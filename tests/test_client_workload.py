"""End-to-end client-workload tests: sim, live parity, chaos exactly-once.

The workload harness (``repro.runner.workload``) must behave identically
across execution lanes and keep the replicated KV store deterministic
under faults.  Headline assertions:

* an open-loop sim run applies every submitted request exactly once, with
  identical KV digests on every replica;
* a zero-jitter virtual-clock live run is **byte-identical** to the sim
  run — same ledgers, same KV state, same request count;
* under leader churn (``crash_churn``) plus transport drops the gateway
  retry path re-proposes commands, at least one duplicate reaches the
  ledger, the exactly-once filter applies each identity once, and the end
  state equals a fault-free run's.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario, run_scenario
from repro.runner import WorkloadConfig, kv_apply_chains, kv_state_digests
from repro.runner.live import run_live_scenario
from repro.runtime.chaos import ChaosConfig
from repro.statemachine import apply_chains_consistent


def _config(seed: int = 0, **overrides) -> ScenarioConfig:
    defaults = dict(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=30.0,
        seed=seed,
        record_trace=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _workload(**overrides) -> WorkloadConfig:
    defaults = dict(mode="open", rate=10.0, clients=2, stop=20.0)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def _ledgers(replicas):
    return {pid: replica.ledger.block_ids for pid, replica in replicas.items()}


# ----------------------------------------------------------------------
# Simulated lane
# ----------------------------------------------------------------------
def test_sim_open_loop_applies_every_request_once():
    result = run_scenario(_config(workload=_workload()))
    metrics = result.metrics
    # 10/s for 20s on each of 4 hosting replicas.
    assert metrics.requests_submitted == 800
    assert metrics.requests_applied == 800
    assert metrics.requests_rejected == 0
    replicas = list(result.replicas.values())
    digests = set(kv_state_digests(replicas).values())
    assert len(digests) == 1
    assert apply_chains_consistent(kv_apply_chains(replicas).values())
    for replica in replicas:
        assert replica.state_machine.store.applied_total == 800
        assert replica.gateway.outstanding == 0
    # End-to-end latencies recorded and sane.
    latencies = metrics.request_latencies()
    assert len(latencies) == 800
    assert all(lat > 0.0 for lat in latencies)
    p50 = metrics.request_latency_percentile(0.5)
    p99 = metrics.request_latency_percentile(0.99)
    assert 0.0 < p50 <= p99
    # The picklable residue carries the same numbers.
    run_metrics = result.run_metrics()
    assert run_metrics.requests_applied == 800
    assert run_metrics.request_latency_percentile(0.5) == p50


def test_closed_loop_keeps_fixed_concurrency():
    workload = _workload(mode="closed", clients=2, think_time=0.5, stop=20.0)
    result = run_scenario(_config(workload=workload))
    metrics = result.metrics
    assert metrics.requests_applied > 0
    assert metrics.requests_applied == metrics.requests_submitted
    assert len(set(kv_state_digests(result.replicas.values()).values())) == 1
    for replica in result.replicas.values():
        assert replica.gateway.outstanding == 0


def test_client_pids_restrict_hosting():
    workload = _workload(client_pids=(0, 2))
    result = run_scenario(_config(workload=workload))
    hosting = {pid for pid, r in result.replicas.items() if r.gateway is not None}
    assert hosting == {0, 2}
    # Non-hosting replicas still run the state machine.
    assert all(r.state_machine is not None for r in result.replicas.values())
    assert result.metrics.requests_applied == 400


def test_gateway_backpressure_rejects_past_max_pending():
    # Offered load far beyond what consensus can apply within the window,
    # with a tiny outstanding bound: the gateway must refuse, not buffer.
    workload = _workload(rate=200.0, stop=10.0, max_pending=16)
    result = run_scenario(_config(workload=workload))
    metrics = result.metrics
    assert metrics.requests_rejected > 0
    assert metrics.requests_submitted + metrics.requests_rejected > 0
    assert len(set(kv_state_digests(result.replicas.values()).values())) == 1


def test_unknown_workload_mode_rejected():
    with pytest.raises(ValueError, match="unknown workload mode"):
        run_scenario(_config(workload=_workload(mode="bursty")))


# ----------------------------------------------------------------------
# Sim vs zero-jitter virtual-clock live: byte-identical
# ----------------------------------------------------------------------
def test_sim_matches_zero_jitter_live_with_workload():
    config = _config(workload=_workload())
    sim = run_scenario(config)
    live = run_live_scenario(config)  # zero jitter, virtual clock
    assert _ledgers(sim.replicas) == _ledgers(live.replicas)
    assert kv_state_digests(sim.replicas.values()) == live.kv_state_digests()
    assert sim.metrics.requests_applied == live.metrics.requests_applied == 800
    assert live.kv_consistent()


# ----------------------------------------------------------------------
# Exactly-once under leader churn + transport drops
# ----------------------------------------------------------------------
def test_exactly_once_under_churn_and_drops():
    # Clients must sit on replicas that never crash: build the chaos
    # scenario's corruption plan once (without running) to learn them.
    chaos_config = _config(
        duration=70.0,
        scenario="crash_churn",
        scenario_params={"faults": 1, "downtime": 6.0, "period": 12.0, "cycles": 2},
    )
    honest = tuple(sorted(build_scenario(chaos_config).corruption.honest_ids))
    assert len(honest) == 3
    # key_space must exceed the sequences per client (125 here): chaos
    # reorders commits, and a key written by two different seqs would make
    # the final value order-dependent.  With every key written at most once
    # the end state depends only on the applied *set*, which is the
    # property under test.
    workload = _workload(
        stop=25.0, retry_interval=2.0, client_pids=honest, key_space=128
    )
    chaos_config.workload = workload

    chaotic = run_live_scenario(
        chaos_config, chaos=ChaosConfig(drop_rate=0.08, seed=7)
    )
    assert chaotic.fault_counts.get("drops", 0) > 0

    submitted = chaotic.metrics.requests_submitted
    assert submitted == int(workload.rate * workload.stop) * len(honest)

    # Every submitted request eventually applied, none left outstanding.
    assert chaotic.metrics.requests_applied == submitted
    for pid in honest:
        assert chaotic.replicas[pid].gateway.outstanding == 0

    # The retry path really did re-propose: at least one committed
    # duplicate hit the exactly-once filter somewhere...
    duplicates = sum(
        r.state_machine.store.duplicates_skipped for r in chaotic.replicas.values()
    )
    assert duplicates > 0
    # ...and each identity applied exactly once on every replica.
    for replica in chaotic.replicas.values():
        assert replica.state_machine.store.applied_total == submitted
    assert chaotic.kv_consistent()

    # The end state matches a fault-free run offering the same commands —
    # chaos changed the path, never the state.
    clean_config = _config(duration=70.0, workload=workload)
    clean = run_scenario(clean_config)
    assert clean.metrics.requests_applied == submitted
    clean_digests = set(kv_state_digests(clean.replicas.values()).values())
    chaotic_digests = set(chaotic.kv_state_digests().values())
    assert clean_digests == chaotic_digests
    assert len(clean_digests) == 1
