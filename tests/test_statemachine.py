"""Unit tests for the replicated state machine and the client-batch mempool.

Covers the three layers below the workload harness (whose end-to-end and
chaos coverage lives in ``tests/test_client_workload.py``):

* the command wire codec (varint round-trips, error paths);
* :class:`KVStore` / :class:`ReplicatedKV` — exactly-once application,
  state digests, apply-chain prefix consistency, position-based catch-up;
* :class:`Mempool` — whole-batch draining, the ``max_batch`` proposal
  bound, backpressure, queue-level duplicate suppression, and the
  synthetic-filler fallback.
"""

from __future__ import annotations

import pytest

from repro.consensus.mempool import Mempool
from repro.statemachine import (
    OP_DELETE,
    OP_PUT,
    Command,
    CommandBatch,
    KVStore,
    ReplicatedKV,
    apply_chains_consistent,
    decode_commands,
    encode_commands,
)


def _cmd(client: int, seq: int, op: int = OP_PUT, key: str = "k", value: str = "v"):
    return Command(client, seq, op, key, value)


def _batch(commands) -> CommandBatch:
    return CommandBatch(count=len(commands), data=encode_commands(commands))


# ----------------------------------------------------------------------
# Command codec
# ----------------------------------------------------------------------
class TestCommandCodec:
    def test_roundtrip(self):
        commands = [
            Command(0, 0, OP_PUT, "a", "1"),
            Command(7, 300, OP_DELETE, "unicode ✓", ""),
            Command(2**40, 2**33, OP_PUT, "", "v" * 500),
        ]
        assert decode_commands(encode_commands(commands)) == tuple(commands)

    def test_empty_roundtrip(self):
        assert decode_commands(encode_commands([])) == ()

    def test_unknown_op_rejected(self):
        blob = encode_commands([Command(1, 1, 9, "k", "v")])
        with pytest.raises(ValueError, match="unknown command op"):
            decode_commands(blob)

    def test_trailing_bytes_rejected(self):
        blob = encode_commands([_cmd(1, 1)])
        with pytest.raises(ValueError, match="trailing bytes"):
            decode_commands(blob + b"\x00")

    def test_truncated_rejected(self):
        blob = encode_commands([_cmd(1, 1, value="long enough value")])
        with pytest.raises(ValueError):
            decode_commands(blob[:-4])


# ----------------------------------------------------------------------
# KVStore: exactly-once application
# ----------------------------------------------------------------------
class TestKVStore:
    def test_put_get_delete(self):
        store = KVStore()
        assert store.apply(_cmd(1, 0, OP_PUT, "k", "v1"))
        assert store.get("k") == "v1"
        assert store.apply(_cmd(1, 1, OP_PUT, "k", "v2"))
        assert store.get("k") == "v2"
        assert store.apply(_cmd(1, 2, OP_DELETE, "k", ""))
        assert store.get("k") is None
        assert len(store) == 0

    def test_duplicate_identity_applied_once(self):
        store = KVStore()
        assert store.apply(_cmd(3, 5, OP_PUT, "k", "first"))
        # Same identity, different payload: a re-proposed command must not
        # re-execute even if an adversary mutated its content.
        assert not store.apply(_cmd(3, 5, OP_PUT, "k", "second"))
        assert store.get("k") == "first"
        assert store.applied_total == 1
        assert store.duplicates_skipped == 1
        assert store.applied(3, 5)
        assert not store.applied(3, 4)
        assert store.applied_count(3) == 1

    def test_high_seq_bitmask(self):
        store = KVStore()
        assert store.apply(_cmd(1, 10_000))
        assert store.applied(1, 10_000)
        assert not store.applied(1, 9_999)
        assert store.applied_count(1) == 1

    def test_state_digest_covers_applied_sets(self):
        # Same map contents, different applied identities => different digest.
        a, b = KVStore(), KVStore()
        a.apply(_cmd(1, 0, OP_PUT, "k", "v"))
        b.apply(_cmd(1, 1, OP_PUT, "k", "v"))
        assert a.state_digest() != b.state_digest()
        c = KVStore()
        c.apply(_cmd(1, 0, OP_PUT, "k", "v"))
        assert a.state_digest() == c.state_digest()


# ----------------------------------------------------------------------
# ReplicatedKV: ledger catch-up and apply chains
# ----------------------------------------------------------------------
class _Entry:
    def __init__(self, block):
        self.block = block


class _Block:
    def __init__(self, payload):
        self.payload = payload


class _FakeLedger:
    """Just enough of Ledger for catch_up: an ``entries`` sequence."""

    def __init__(self):
        self.entries = []

    def add(self, payload):
        self.entries.append(_Entry(_Block(tuple(payload))))


class TestReplicatedKV:
    def test_catch_up_applies_by_position(self):
        ledger = _FakeLedger()
        kv = ReplicatedKV()
        ledger.add([_batch([_cmd(1, 0, OP_PUT, "a", "1")])])
        assert kv.catch_up(ledger, now=1.0) == 1
        assert kv.applied_entries == 1
        # Catch-up is idempotent at the same ledger length.
        assert kv.catch_up(ledger, now=2.0) == 0
        ledger.add([_batch([_cmd(1, 1, OP_PUT, "b", "2")])])
        assert kv.catch_up(ledger, now=3.0) == 1
        assert kv.store.get("a") == "1" and kv.store.get("b") == "2"
        assert len(kv.apply_chain) == 2

    def test_synthetic_payload_items_are_skipped(self):
        ledger = _FakeLedger()
        kv = ReplicatedKV()
        ledger.add([(0, 0), (0, 1), _batch([_cmd(2, 0, OP_PUT, "k", "v")]), "marker"])
        assert kv.catch_up(ledger, now=0.0) == 1
        assert kv.store.get("k") == "v"

    def test_committed_duplicates_filtered_and_not_chained(self):
        # The same batch committed in two blocks: second application is a
        # no-op, and the chain hashes only first applications, so another
        # replica that never saw the duplicate commit chains identically.
        batch = _batch([_cmd(1, 0, OP_PUT, "k", "v")])
        with_dup, without_dup = _FakeLedger(), _FakeLedger()
        with_dup.add([batch])
        with_dup.add([batch])
        without_dup.add([batch])
        without_dup.add([])
        kv_dup, kv_clean = ReplicatedKV(), ReplicatedKV()
        kv_dup.catch_up(with_dup, now=0.0)
        kv_clean.catch_up(without_dup, now=0.0)
        assert kv_dup.store.duplicates_skipped == 1
        assert kv_dup.apply_chain == kv_clean.apply_chain
        assert kv_dup.digest() == kv_clean.digest()

    def test_on_apply_fires_only_for_first_application(self):
        seen = []
        kv = ReplicatedKV(on_apply=lambda c, t: seen.append((c.client, c.seq, t)))
        ledger = _FakeLedger()
        batch = _batch([_cmd(1, 0), _cmd(1, 1)])
        ledger.add([batch])
        ledger.add([batch])
        kv.catch_up(ledger, now=5.0)
        assert seen == [(1, 0, 5.0), (1, 1, 5.0)]

    def test_apply_chains_prefix_consistency(self):
        assert apply_chains_consistent([("a", "b", "c"), ("a", "b"), ("a",)])
        assert not apply_chains_consistent([("a", "b"), ("a", "x")])
        assert apply_chains_consistent([])
        assert apply_chains_consistent([(), ("a",)])


# ----------------------------------------------------------------------
# Mempool
# ----------------------------------------------------------------------
class TestMempool:
    def test_synthetic_filler_uses_int_tuple_ids(self):
        pool = Mempool(owner=3, batch_size=4)
        first = pool.next_batch()
        second = pool.next_batch()
        assert first == ((3, 0), (3, 1), (3, 2), (3, 3))
        assert second == ((3, 4), (3, 5), (3, 6), (3, 7))

    def test_drains_whole_batches_up_to_max_batch(self):
        pool = Mempool(owner=0, max_batch=5)
        batches = [_batch([_cmd(1, i), _cmd(1, i + 1)]) for i in range(0, 8, 2)]
        for batch in batches:
            assert pool.ingest(batch)
        assert pool.pending_commands == 8
        # 2 + 2 fit; a third batch would exceed max_batch=5.
        assert pool.next_batch() == (batches[0], batches[1])
        assert pool.pending_commands == 4
        assert pool.next_batch() == (batches[2], batches[3])
        assert pool.pending_commands == 0

    def test_oversized_first_batch_goes_alone(self):
        pool = Mempool(owner=0, max_batch=4)
        big = _batch([_cmd(1, i) for i in range(10)])
        assert pool.ingest(big)
        assert pool.next_batch() == (big,)

    def test_backpressure_bounds_pending_commands(self):
        pool = Mempool(owner=0, max_pending=3)
        assert pool.ingest(_batch([_cmd(1, 0), _cmd(1, 1)]))
        assert not pool.ingest(_batch([_cmd(2, 0), _cmd(2, 1)]))
        assert pool.rejected == 1
        assert pool.ingest(_batch([_cmd(3, 0)]))
        assert pool.pending_commands == 3

    def test_queued_duplicates_dropped_then_forgotten(self):
        pool = Mempool(owner=0)
        batch = _batch([_cmd(1, 0)])
        assert pool.ingest(batch)
        # A retry racing its original forward: dropped while still queued...
        assert pool.ingest(batch)
        assert pool.duplicates == 1
        assert pool.pending_commands == 1
        pool.next_batch()
        # ...but accepted again once proposed, so re-proposal after a failed
        # view is possible.
        assert pool.ingest(batch)
        assert pool.pending_commands == 1
