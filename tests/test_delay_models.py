"""Delay-model edge cases: the partial-synchrony clamp, targeted delays,
and pre/post-GST straddling.

These pin down the exact boundary semantics the protocols rely on:

* a message sent at ``t`` is delivered by ``max(GST, t) + Delta`` no matter
  what the adversary proposes — and a maximally adversarial model lands
  *exactly* on that deadline;
* :class:`TargetedDelay` applies its delay according to ``direction`` and
  falls back to the base model otherwise;
* :class:`PreGSTChaos` switches models at GST: the chaotic draw applies to
  sends strictly before GST, the wrapped model from GST onwards.
"""

from __future__ import annotations

import pytest

from repro.sim.events import Simulator
from repro.sim.network import (
    AdversarialDelay,
    FixedDelay,
    Network,
    NetworkConfig,
    PendingSend,
    PreGSTChaos,
    TargetedDelay,
)


class Sink:
    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.received: list[tuple[object, int]] = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender))


def build_network(gst: float, delta: float, model, n: int = 3):
    sim = Simulator(seed=3)
    net = Network(sim, NetworkConfig(delta=delta, gst=gst, actual_delay=delta / 2), model)
    for pid in range(n):
        net.register(Sink(pid))
    return sim, net


HUGE_DELAY = AdversarialDelay(lambda pending, sim: 1e9, name="huge")


# ----------------------------------------------------------------------
# The partial-synchrony clamp: delivery by exactly max(GST, t) + Delta
# ----------------------------------------------------------------------
def test_pre_gst_send_clamped_to_exactly_gst_plus_delta():
    gst, delta = 10.0, 1.5
    sim, net = build_network(gst, delta, HUGE_DELAY)
    envelope = net.send(0, 1, "early")  # sent at t=0 < GST
    assert envelope.deliver_time == pytest.approx(gst + delta)


def test_post_gst_send_clamped_to_exactly_send_time_plus_delta():
    gst, delta = 10.0, 1.5
    sim, net = build_network(gst, delta, HUGE_DELAY)
    sim.run(until=25.0)  # advance past GST
    envelope = net.send(0, 1, "late")
    assert envelope.deliver_time == pytest.approx(25.0 + delta)


def test_send_exactly_at_gst_uses_post_gst_deadline():
    gst, delta = 10.0, 2.0
    sim, net = build_network(gst, delta, HUGE_DELAY)
    sim.run(until=gst)  # now == GST exactly
    envelope = net.send(0, 1, "at-gst")
    # max(GST, t) + Delta with t == GST: both branches agree, and the
    # message counts as post-GST for the delay model.
    assert envelope.deliver_time == pytest.approx(gst + delta)


def test_benign_delay_is_not_clamped():
    gst, delta = 0.0, 1.0
    sim, net = build_network(gst, delta, FixedDelay(0.25))
    envelope = net.send(0, 1, "benign")
    assert envelope.deliver_time == pytest.approx(0.25)


def test_negative_proposed_delay_is_floored_at_zero():
    sim, net = build_network(0.0, 1.0, AdversarialDelay(lambda p, s: -5.0, name="negative"))
    envelope = net.send(0, 1, "eager")
    assert envelope.deliver_time == pytest.approx(0.0)


# ----------------------------------------------------------------------
# TargetedDelay directions
# ----------------------------------------------------------------------
def _pending(sender: int, recipient: int) -> PendingSend:
    return PendingSend(
        sender=sender, recipient=recipient, payload="x", send_time=0.0, after_gst=True
    )


@pytest.mark.parametrize(
    "direction,expectations",
    [
        # (sender, recipient) -> whether the targeted delay applies
        ("to", {(0, 1): True, (1, 0): False, (0, 2): False}),
        ("from", {(0, 1): False, (1, 0): True, (1, 2): True}),
        ("both", {(0, 1): True, (1, 0): True, (0, 2): False}),
    ],
)
def test_targeted_delay_directions(direction, expectations):
    sim = Simulator(seed=0)
    model = TargetedDelay(FixedDelay(0.1), targets=[1], target_delay=0.9, direction=direction)
    for (sender, recipient), hit in expectations.items():
        expected = 0.9 if hit else 0.1
        assert model.propose_delay(_pending(sender, recipient), sim) == pytest.approx(expected), (
            f"direction={direction}, sender={sender}, recipient={recipient}"
        )


def test_targeted_delay_end_to_end_delivery_times():
    sim, net = build_network(
        0.0, 1.0, TargetedDelay(FixedDelay(0.1), targets=[1], target_delay=0.8, direction="to")
    )
    slowed = net.send(0, 1, "to-target")
    normal = net.send(0, 2, "to-other")
    assert slowed.deliver_time == pytest.approx(0.8)
    assert normal.deliver_time == pytest.approx(0.1)


# ----------------------------------------------------------------------
# PreGSTChaos straddling GST
# ----------------------------------------------------------------------
def test_pre_gst_chaos_switches_to_post_model_at_gst():
    gst, delta = 20.0, 1.0
    post = FixedDelay(0.05)
    sim, net = build_network(gst, delta, PreGSTChaos(post, pre_gst_max_delay=500.0))

    before = net.send(0, 1, "before")  # t = 0 < GST: chaotic, clamped
    assert before.deliver_time <= gst + delta
    assert before.deliver_time > 0.05 + 1e-9  # the chaotic draw is not the post model

    sim.run(until=gst)  # t == GST: the post model takes over
    at_gst = net.send(0, 1, "at")
    assert at_gst.deliver_time == pytest.approx(gst + 0.05)

    sim.run(until=gst + 5.0)
    after = net.send(0, 1, "after")
    assert after.deliver_time == pytest.approx(gst + 5.0 + 0.05)


def test_pre_gst_chaos_draw_is_deterministic_per_seed():
    def deliver_times(seed: int) -> list[float]:
        sim = Simulator(seed=seed)
        net = Network(
            sim,
            NetworkConfig(delta=1.0, gst=50.0, actual_delay=0.1),
            PreGSTChaos(FixedDelay(0.1), pre_gst_max_delay=30.0),
        )
        for pid in range(3):
            net.register(Sink(pid))
        return [net.send(0, 1, i).deliver_time for i in range(5)]

    assert deliver_times(11) == deliver_times(11)
    assert deliver_times(11) != deliver_times(12)


def test_pre_gst_chaos_message_straddles_gst_but_arrives_by_gst_plus_delta():
    """A message sent just before GST may be drawn far past GST; the clamp
    guarantees it still lands within Delta of GST."""
    gst, delta = 10.0, 1.0
    sim, net = build_network(gst, delta, PreGSTChaos(FixedDelay(0.1), pre_gst_max_delay=1000.0))
    sim.run(until=gst - 0.01)
    envelope = net.send(0, 1, "straddler")
    assert envelope.send_time < gst
    assert envelope.deliver_time <= gst + delta
    assert envelope.deliver_time >= envelope.send_time
