"""Shared-memory transport tests: ring mechanics, live delivery, chaos.

Three layers, mirroring how the transport is built:

* :class:`~repro.runtime.shm.SpscRing` unit tests over a plain bytearray —
  wraparound (prefix and body split across the ring edge), overflow
  accounting, monotonic never-wrapping indices, and the producer/consumer
  sleep-flag handshake, exercised through *two* ring views over one buffer
  exactly as two processes would see it;
* in-process :class:`~repro.runtime.shm.ShmTransport` pairs over real
  shared-memory segments and UDP doorbells — delivery, overflow surfacing
  through ``frames_dropped``/``last_errors``, teardown and post-stop sends;
* chaos composition: a :class:`~repro.runtime.chaos.FaultyTransport`
  wrapping shm counts drops and targeted delays in ``FaultCounters``
  exactly as it does over TCP.

The wall-clock tests (everything touching real segments or sockets) are
``tcp``-marked so CI's tier-1 matrix skips them; the live-smoke job runs
this file in full.
"""

from __future__ import annotations

import asyncio
import uuid

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.runner import make_live_cluster
from repro.runtime.asyncio_runtime import AsyncioRuntime, MonotonicClock
from repro.runtime.chaos import ChaosConfig, FaultCounters, FaultyTransport, adapt_schedule
from repro.runtime.codec import default_binary_codec
from repro.runtime.shm import (
    DEFAULT_RING_BYTES,
    MIN_RING_BYTES,
    RING_HEADER_BYTES,
    ShmTransport,
    SpscRing,
    attach_ring,
    create_cluster_rings,
    destroy_cluster_rings,
    ring_segment_name,
)
from repro.sim.network import FixedDelay, NetworkConfig, TargetedDelay


def _frame(body: bytes) -> bytes:
    """A wire frame exactly as the codecs emit one: 4-byte BE prefix + body."""
    return len(body).to_bytes(4, "big") + body


def _ring(capacity: int) -> SpscRing:
    return SpscRing(memoryview(bytearray(RING_HEADER_BYTES + capacity)), capacity)


def _token() -> str:
    return f"t{uuid.uuid4().hex[:10]}"


# ----------------------------------------------------------------------
# SpscRing mechanics (no shared memory needed: any buffer works)
# ----------------------------------------------------------------------
class TestSpscRing:
    def test_push_peek_consume_roundtrip(self):
        ring = _ring(256)
        bodies = [b"alpha", b"", b"x" * 100]
        for body in bodies:
            assert ring.try_push(_frame(body))
        for body in bodies:
            got = ring.peek()
            assert bytes(got) == body
            ring.consume()
        assert ring.peek() is None
        assert ring.unread_bytes == 0

    def test_wraparound_splits_prefix_and_body(self):
        # Frame length 17 against capacity 32: the write position visits
        # every residue of gcd(17, 32) = 1, so over 64 frames both the
        # 4-byte prefix and the body get split across the ring edge.
        cap = 32
        ring = _ring(cap)
        for i in range(64):
            body = bytes([i % 256]) * 13
            assert ring.try_push(_frame(body)), f"push {i} refused"
            got = ring.peek()
            assert got is not None and bytes(got) == body, f"frame {i} corrupted"
            ring.consume()
        # Indices are monotonic and never wrap: 64 frames of 17 bytes.
        assert ring._w == ring._r == 64 * 17 > cap

    def test_two_views_over_one_buffer_agree(self):
        # Producer and consumer each construct their own ring view, exactly
        # as two processes attaching the same segment do; indices must
        # publish through the header, not through Python state.
        buf = memoryview(bytearray(RING_HEADER_BYTES + 128))
        producer = SpscRing(buf, 128)
        consumer = SpscRing(buf, 128)
        assert producer.try_push(_frame(b"cross-process"))
        assert bytes(consumer.peek()) == b"cross-process"
        consumer.consume()
        assert producer.unread_bytes == 0
        # The freed space is visible to the producer's next push.
        assert producer.try_push(_frame(b"x" * 100))

    def test_overflow_refuses_and_counts_without_corruption(self):
        ring = _ring(64)
        kept = _frame(b"a" * 40)
        assert ring.try_push(kept)
        assert not ring.try_push(_frame(b"b" * 40))
        assert ring.dropped == 1
        # The refused frame left the stored one untouched.
        assert bytes(ring.peek()) == b"a" * 40
        ring.consume()
        # Space freed by consume accepts new frames again.
        assert ring.try_push(_frame(b"b" * 40))
        assert ring.dropped == 1

    def test_exact_fit_fills_the_whole_capacity(self):
        ring = _ring(64)
        body = b"f" * 60  # frame == capacity exactly
        assert ring.try_push(_frame(body))
        assert ring.unread_bytes == 64
        assert not ring.try_push(_frame(b""))  # even 4 bytes do not fit
        assert bytes(ring.peek()) == body

    def test_sleep_flag_handshake(self):
        buf = memoryview(bytearray(RING_HEADER_BYTES + 64))
        producer = SpscRing(buf, 64)
        consumer = SpscRing(buf, 64)
        assert not producer.consumer_sleeping()
        consumer.set_sleeping(True)
        assert producer.consumer_sleeping()
        producer.set_sleeping(False)  # the poking producer retracts it
        assert not consumer.consumer_sleeping()

    def test_codec_frames_decode_in_place_from_the_ring(self):
        codec = default_binary_codec()
        ring = _ring(4096)
        scratch = bytearray()
        payloads = ["ping", {"k": (1, 2)}, 12345]
        for payload in payloads:
            del scratch[:]
            codec.encode_into(3, payload, scratch)
            assert ring.try_push(scratch)
        for payload in payloads:
            body = ring.peek()
            sender, decoded = codec.decode_body(body)
            body = None  # release the memoryview before consume
            ring.consume()
            assert sender == 3 and decoded == payload


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    @pytest.mark.tcp
    def test_create_attach_destroy(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)
        try:
            assert len(segments) == 2  # one per directed pair
            attached = attach_ring(ring_segment_name(token, 0, 1))
            assert attached.size >= RING_HEADER_BYTES + MIN_RING_BYTES
            attached.close()
        finally:
            destroy_cluster_rings(segments)
        with pytest.raises(FileNotFoundError):
            attach_ring(ring_segment_name(token, 0, 1))

    def test_tiny_rings_are_rejected(self):
        with pytest.raises(ConfigurationError):
            create_cluster_rings(_token(), [0, 1], MIN_RING_BYTES - 1)
        with pytest.raises(ConfigurationError):
            ShmTransport(0, _token(), ring_bytes=MIN_RING_BYTES - 1)

    def test_transport_hosts_exactly_its_own_pid(self):
        transport = ShmTransport(2, _token())

        class Proc:
            pid = 3

        with pytest.raises(ConfigurationError):
            transport.register(Proc())


# ----------------------------------------------------------------------
# Live in-process transport pairs over real segments and doorbells
# ----------------------------------------------------------------------
class _Sink:
    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.received: list[tuple[int, object]] = []

    def deliver(self, payload, sender) -> None:
        self.received.append((sender, payload))


async def _wait_until(predicate, timeout: float = 8.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached within the budget")
        await asyncio.sleep(0.005)


async def _start_pair(token, ring_bytes=DEFAULT_RING_BYTES, wrap0=None):
    """Two ShmTransports (pids 0, 1) on one loop, started and peered.

    ``wrap0`` optionally decorates pid 0's transport (chaos tests) before
    the runtime binds it.
    """
    t0 = ShmTransport(0, token, ring_bytes=ring_bytes)
    t1 = ShmTransport(1, token, ring_bytes=ring_bytes)
    outer0 = wrap0(t0) if wrap0 is not None else t0
    r0 = AsyncioRuntime(outer0, clock=MonotonicClock())
    r1 = AsyncioRuntime(t1, clock=MonotonicClock())
    sinks = (_Sink(0), _Sink(1))
    r0.register(sinks[0])
    r1.register(sinks[1])
    peers = {0: await t0.start_server(), 1: await t1.start_server()}
    t0.set_peers(peers)
    t1.set_peers(peers)
    await t0.start()
    await t1.start()
    return (outer0, t1), sinks


@pytest.mark.tcp
class TestShmTransportPair:
    def test_send_and_broadcast_deliver_across_segments(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)

        async def run():
            (t0, t1), sinks = await _start_pair(token, MIN_RING_BYTES)
            try:
                t0.send(0, 1, "unicast")
                await _wait_until(lambda: len(sinks[1].received) >= 1)
                t1.broadcast(1, "fanout")  # remote to 0, local to 1
                await _wait_until(
                    lambda: len(sinks[0].received) >= 1
                    and len(sinks[1].received) >= 2
                )
            finally:
                await t0.stop()
                await t1.stop()
            return sinks

        sinks = asyncio.run(run())
        assert sinks[1].received[0] == (0, "unicast")
        assert (1, "fanout") in sinks[0].received
        assert (1, "fanout") in sinks[1].received
        destroy_cluster_rings(segments)

    def test_many_frames_survive_ring_wraparound(self):
        # MIN_RING_BYTES is far smaller than 400 frames' worth of bytes, so
        # the ring wraps many times while the consumer keeps draining.
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)

        async def run():
            (t0, t1), sinks = await _start_pair(token, MIN_RING_BYTES)
            try:
                for i in range(400):
                    t0.send(0, 1, f"msg-{i}")
                    if i % 16 == 0:
                        await asyncio.sleep(0)  # let the doorbell drain
                await _wait_until(
                    lambda: len(sinks[1].received) + t0.frames_dropped >= 400
                )
                dropped = t0.frames_dropped
            finally:
                await t0.stop()
                await t1.stop()
            return sinks[1].received, dropped

        received, dropped = asyncio.run(run())
        assert dropped == 0, f"ring overflowed ({dropped} dropped)"
        assert [p for _, p in received] == [f"msg-{i}" for i in range(400)]
        destroy_cluster_rings(segments)

    def test_overflow_counts_frames_and_surfaces_one_error(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)

        async def run():
            # Only the producer runs: nothing ever drains ring 0 -> 1.
            t0 = ShmTransport(0, token, ring_bytes=MIN_RING_BYTES)
            AsyncioRuntime(t0, clock=MonotonicClock())
            peers = {0: await t0.start_server(), 1: ("127.0.0.1", 9)}
            t0.set_peers(peers)
            await t0.start()
            try:
                payload = "y" * 512
                for _ in range(40):  # ~40 frames of >512 B into 4096 B
                    t0.send(0, 1, payload)
            finally:
                await t0.stop()
            return t0

        t0 = asyncio.run(run())
        assert t0.frames_dropped > 0
        assert len(t0.last_errors) == 1  # one entry per peer, not per frame
        assert "ring full" in t0.last_errors[0]
        destroy_cluster_rings(segments)

    def test_sends_after_stop_are_silently_swallowed(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)

        async def run():
            (t0, t1), _ = await _start_pair(token, MIN_RING_BYTES)
            await t0.stop()
            await t1.stop()
            # Late replica timers still fire sends; they must vanish like
            # writes into a closed TCP socket, not raise into the loop.
            t0.send(0, 1, "late")
            t0.broadcast(0, "late-fanout")
            return t0

        t0 = asyncio.run(run())
        assert t0.frames_dropped == 0
        assert t0.last_errors == []
        destroy_cluster_rings(segments)


# ----------------------------------------------------------------------
# Chaos composition: FaultyTransport wraps shm unchanged
# ----------------------------------------------------------------------
@pytest.mark.tcp
class TestChaosOverShm:
    def test_drop_injector_counts_in_fault_counters(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)
        counters = FaultCounters()

        async def run():
            (t0, t1), sinks = await _start_pair(
                token,
                MIN_RING_BYTES,
                wrap0=lambda inner: FaultyTransport(
                    inner,
                    chaos=ChaosConfig(drop_rate=0.5, seed=11),
                    counters=counters,
                ),
            )
            try:
                for i in range(60):
                    t0.send(0, 1, f"maybe-{i}")
                await _wait_until(
                    lambda: len(sinks[1].received)
                    + counters.as_dict()["drops"] >= 60
                )
            finally:
                await t0.stop()
                await t1.stop()
            return sinks

        sinks = asyncio.run(run())
        drops = counters.as_dict()["drops"]
        assert 0 < drops < 60  # the injector really fired, and not on everything
        assert len(sinks[1].received) == 60 - drops
        destroy_cluster_rings(segments)

    def test_targeted_delay_schedule_counts_and_delays(self):
        token = _token()
        segments = create_cluster_rings(token, [0, 1], MIN_RING_BYTES)
        counters = FaultCounters()
        network = NetworkConfig(delta=1.0, gst=0.0, actual_delay=0.05)
        schedule = adapt_schedule(
            TargetedDelay(
                base=FixedDelay(0.0),
                targets=frozenset({1}),
                target_delay=0.3,
                direction="to",
            )
        )

        async def run():
            (t0, t1), sinks = await _start_pair(
                token,
                MIN_RING_BYTES,
                wrap0=lambda inner: FaultyTransport(
                    inner, schedule=schedule, network=network, counters=counters
                ),
            )
            loop = asyncio.get_running_loop()
            sent_at = loop.time()
            try:
                t0.send(0, 1, "slowed")
                await _wait_until(lambda: len(sinks[1].received) >= 1)
                arrival = loop.time() - sent_at
            finally:
                await t0.stop()
                await t1.stop()
            return arrival

        arrival = asyncio.run(run())
        assert counters.as_dict()["targeted_delays"] == 1
        # The hold-then-forward lane held the frame for the proposed delay.
        assert arrival >= 0.25
        destroy_cluster_rings(segments)


# ----------------------------------------------------------------------
# Cluster equivalence: transport="shm" is an execution detail
# ----------------------------------------------------------------------
@pytest.mark.tcp
def test_shm_and_tcp_process_clusters_agree():
    """Same config + seed ⇒ same committed chain over rings or sockets.

    Wall-clock runs stop at slightly different points, so the comparison is
    over the common prefix, which must cover at least the commit target.
    """
    target = 5
    config = ScenarioConfig(
        n=4, pacemaker="lumiere", delta=0.5, duration=30.0,
        seed=3, record_trace=False,
    )

    async def run(transport: str):
        cluster = make_live_cluster(config, placement="process", transport=transport)
        try:
            commits = await asyncio.wait_for(
                cluster.run_until_commits(target, timeout=30.0), timeout=40.0
            )
        finally:
            await cluster.stop()
        assert commits >= target
        assert cluster.teardown_errors == []
        ledger = min(
            (list(ids) for ids in cluster.ledger_ids.values()), key=len
        )
        return ledger

    shm_chain = asyncio.run(run("shm"))
    tcp_chain = asyncio.run(run("tcp"))
    prefix = min(len(shm_chain), len(tcp_chain))
    assert prefix >= target
    assert shm_chain[:prefix] == tcp_chain[:prefix]
