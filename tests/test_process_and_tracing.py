"""Unit tests for the Process base class, tracing, and the consensus engine's
message hygiene (observed through small end-to-end runs)."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.sim.process import Process
from repro.sim.tracing import TraceEvent, TraceRecorder


class Echo(Process):
    """Test process: records what it receives; replies to 'ping' with 'pong'."""

    def __init__(self, pid, ctx):
        super().__init__(pid, ctx)
        self.received = []

    def on_message(self, payload, sender):
        self.received.append((payload, sender))
        if payload == "ping":
            self.send(sender, "pong")


# ----------------------------------------------------------------------
# Process basics
# ----------------------------------------------------------------------
def test_processes_exchange_messages(ctx):
    a = Echo(0, ctx)
    b = Echo(1, ctx)
    a.send(1, "ping")
    ctx.sim.run()
    assert ("ping", 0) in b.received
    assert ("pong", 1) in a.received


def test_crashed_process_neither_sends_nor_receives(ctx):
    a = Echo(0, ctx)
    b = Echo(1, ctx)
    b.crash()
    a.send(1, "ping")
    b.send(0, "never")
    ctx.sim.run()
    assert b.received == []
    assert a.received == []
    assert b.crashed


def test_broadcast_includes_self(ctx):
    a = Echo(0, ctx)
    Echo(1, ctx)
    a.broadcast("hello")
    ctx.sim.run()
    assert ("hello", 0) in a.received


def test_local_time_tracks_clock(ctx):
    a = Echo(0, ctx)
    ctx.sim.schedule(4.0, lambda: None)
    ctx.sim.run()
    assert a.local_time == pytest.approx(4.0)
    assert a.now == pytest.approx(4.0)


def test_trace_helper_records_events(ctx):
    a = Echo(0, ctx)
    a.trace("custom_event", value=7)
    events = ctx.trace.of_kind("custom_event")
    assert len(events) == 1
    assert events[0].details == {"value": 7}
    assert events[0].pid == 0


# ----------------------------------------------------------------------
# Trace recorder
# ----------------------------------------------------------------------
def test_trace_recorder_filters_and_ordering():
    recorder = TraceRecorder()
    recorder.record(1.0, 0, "a", {})
    recorder.record(2.0, 1, "b", {"x": 1})
    recorder.record(3.0, 0, "a", {})
    assert len(recorder) == 3
    assert [e.time for e in recorder.of_kind("a")] == [1.0, 3.0]
    assert [e.kind for e in recorder.for_pid(0)] == ["a", "a"]
    assert recorder.first("b").details == {"x": 1}
    assert recorder.last("a").time == 3.0
    assert recorder.first("missing") is None
    assert len(recorder.where(lambda e: e.time > 1.5)) == 2


def test_trace_recorder_respects_disabled_and_capacity():
    disabled = TraceRecorder(enabled=False)
    disabled.record(1.0, 0, "a", {})
    assert len(disabled) == 0
    capped = TraceRecorder(max_events=2)
    for i in range(5):
        capped.record(float(i), 0, "a", {})
    assert len(capped) == 2


def test_trace_timeline_rendering():
    recorder = TraceRecorder()
    recorder.record(1.0, 0, "enter_view", {"view": 3})
    recorder.record(2.0, 1, "qc_produced", {"view": 3})
    text = recorder.timeline()
    assert "enter_view" in text and "qc_produced" in text
    filtered = recorder.timeline(kinds={"qc_produced"})
    assert "enter_view" not in filtered
    assert str(TraceEvent(1.0, 0, "k", {"a": 1})).startswith("[t=")


# ----------------------------------------------------------------------
# Consensus engine hygiene, observed via short runs
# ----------------------------------------------------------------------
def test_commits_lag_decisions_by_the_three_chain_rule():
    result = run_scenario(
        ScenarioConfig(n=4, pacemaker="lumiere", duration=60.0, record_trace=False)
    )
    decisions = result.honest_decisions()
    commits = result.committed_blocks()
    assert 0 < commits < decisions
    # The 3-chain rule means commits trail certified views by a small constant.
    assert decisions - commits <= 5


def test_every_commit_was_previously_certified():
    result = run_scenario(
        ScenarioConfig(n=4, pacemaker="lumiere", duration=50.0, record_trace=False)
    )
    decided_views = {d.view for d in result.metrics.decisions}
    for replica in result.honest_replicas:
        for entry in replica.ledger.entries:
            assert entry.block.view in decided_views


def test_all_honest_replicas_observe_the_same_committed_prefix():
    result = run_scenario(
        ScenarioConfig(n=4, pacemaker="fever", duration=60.0, record_trace=False)
    )
    ledgers = [replica.ledger.block_ids for replica in result.honest_replicas]
    shortest = min(len(ids) for ids in ledgers)
    assert shortest > 5
    reference = ledgers[0][:shortest]
    assert all(ids[:shortest] == reference for ids in ledgers)
