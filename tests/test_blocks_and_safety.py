"""Unit and property tests for blocks, the block tree, safety rules and ledgers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.blocks import Block, BlockTree, GENESIS
from repro.consensus.ledger import Ledger, ledgers_consistent
from repro.consensus.quorum import QuorumCertificate, VoteAggregator
from repro.consensus.safety import SafetyRules
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.errors import ConsensusError, SafetyViolation


def make_chain(tree: BlockTree, length: int, start_view: int = 0, parent: Block = GENESIS):
    """Build a chain of ``length`` blocks with consecutive views."""
    blocks = []
    for i in range(length):
        block = Block(
            view=start_view + i,
            parent_id=parent.block_id,
            proposer=i % 4,
            payload=(f"cmd-{start_view + i}",),
            justify_view=parent.view,
        )
        tree.add(block)
        blocks.append(block)
        parent = block
    return blocks


def make_qc(scheme: ThresholdScheme, keys, view: int, block_id: str, signers=range(3)):
    message = ("qc", view, block_id)
    partials = [scheme.partial_sign(keys[i], message) for i in signers]
    aggregate = scheme.combine(partials, threshold=len(list(signers)), message=message)
    return QuorumCertificate(view=view, block_id=block_id, aggregate=aggregate)


# ----------------------------------------------------------------------
# Block tree
# ----------------------------------------------------------------------
def test_genesis_is_always_present():
    tree = BlockTree()
    assert GENESIS.block_id in tree
    assert len(tree) == 1


def test_block_id_is_stable_and_content_derived():
    a = Block(view=1, parent_id=GENESIS.block_id, proposer=0, payload=("x",))
    b = Block(view=1, parent_id=GENESIS.block_id, proposer=0, payload=("x",))
    c = Block(view=1, parent_id=GENESIS.block_id, proposer=0, payload=("y",))
    assert a.block_id == b.block_id
    assert a.block_id != c.block_id


def test_add_rejects_unknown_parent():
    tree = BlockTree()
    orphan = Block(view=5, parent_id="deadbeef", proposer=1)
    with pytest.raises(ConsensusError):
        tree.add(orphan)


def test_chain_to_genesis_and_ancestry():
    tree = BlockTree()
    chain = make_chain(tree, 5)
    full = tree.chain_to_genesis(chain[-1])
    assert [b.view for b in full] == [4, 3, 2, 1, 0, -1]
    assert tree.is_ancestor(chain[0].block_id, chain[-1])
    assert tree.extends(chain[-1], chain[2].block_id)
    assert not tree.is_ancestor(chain[-1].block_id, chain[0])


def test_ancestry_across_forks():
    tree = BlockTree()
    trunk = make_chain(tree, 3)
    fork = Block(view=10, parent_id=trunk[0].block_id, proposer=2, payload=("fork",))
    tree.add(fork)
    assert tree.is_ancestor(trunk[0].block_id, fork)
    assert not tree.is_ancestor(trunk[2].block_id, fork)


def test_require_raises_for_unknown_block():
    tree = BlockTree()
    with pytest.raises(ConsensusError):
        tree.require("missing")


@settings(max_examples=40, deadline=None)
@given(length=st.integers(min_value=1, max_value=30), probe=st.integers(min_value=0, max_value=29))
def test_every_block_in_a_chain_is_an_ancestor_of_the_tip(length, probe):
    tree = BlockTree()
    chain = make_chain(tree, length)
    tip = chain[-1]
    index = min(probe, length - 1)
    assert tree.is_ancestor(chain[index].block_id, tip)


# ----------------------------------------------------------------------
# Vote aggregation
# ----------------------------------------------------------------------
def test_vote_aggregator_forms_qc_at_quorum(protocol_config, pki_and_keys, scheme):
    _, keys = pki_and_keys
    aggregator = VoteAggregator(scheme, quorum_size=3)
    block_id = "abc"
    message = ("qc", 2, block_id)
    assert aggregator.add_vote(2, block_id, scheme.partial_sign(keys[0], message)) is None
    assert aggregator.add_vote(2, block_id, scheme.partial_sign(keys[1], message)) is None
    qc = aggregator.add_vote(2, block_id, scheme.partial_sign(keys[2], message))
    assert qc is not None and qc.view == 2 and qc.signers == frozenset({0, 1, 2})
    # Further votes do not re-form the QC.
    assert aggregator.add_vote(2, block_id, scheme.partial_sign(keys[3], message)) is None


def test_vote_aggregator_ignores_duplicate_voters(pki_and_keys, scheme):
    _, keys = pki_and_keys
    aggregator = VoteAggregator(scheme, quorum_size=3)
    message = ("qc", 1, "b")
    for _ in range(5):
        assert aggregator.add_vote(1, "b", scheme.partial_sign(keys[0], message)) is None
    assert aggregator.votes_for(1, "b") == 1


def test_vote_aggregator_rejects_invalid_partials(pki_and_keys, scheme):
    _, keys = pki_and_keys
    aggregator = VoteAggregator(scheme, quorum_size=2)
    wrong_message = scheme.partial_sign(keys[0], ("qc", 9, "other"))
    assert aggregator.add_vote(1, "b", wrong_message) is None
    assert aggregator.votes_for(1, "b") == 0


# ----------------------------------------------------------------------
# Safety rules
# ----------------------------------------------------------------------
def test_high_qc_tracking(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    chain = make_chain(tree, 3)
    rules = SafetyRules(tree)
    qc1 = make_qc(scheme, keys, 0, chain[0].block_id)
    qc2 = make_qc(scheme, keys, 2, chain[2].block_id)
    rules.update_high_qc(qc1)
    rules.update_high_qc(qc2)
    rules.update_high_qc(qc1)  # older QC must not regress the high QC
    assert rules.high_qc_view == 2


def test_voting_rule_rejects_old_views(pki_and_keys, scheme):
    tree = BlockTree()
    chain = make_chain(tree, 2)
    rules = SafetyRules(tree)
    rules.record_vote(chain[1])
    assert not rules.safe_to_vote(chain[0], None)
    assert not rules.safe_to_vote(chain[1], None)


def test_voting_rule_allows_extension_of_lock(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    chain = make_chain(tree, 4)
    rules = SafetyRules(tree)
    # Certifying block 2 (whose justify is view 1) locks view 1.
    qc = make_qc(scheme, keys, 2, chain[2].block_id)
    rules.update_high_qc(qc)
    assert rules.state.locked_qc is not None and rules.state.locked_qc.view == 1
    extending = Block(
        view=5, parent_id=chain[3].block_id, proposer=0, payload=("z",), justify_view=3
    )
    tree.add(extending)
    assert rules.safe_to_vote(extending, None)


def test_voting_rule_rejects_fork_below_lock_without_newer_justify(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    chain = make_chain(tree, 4)
    rules = SafetyRules(tree)
    rules.update_high_qc(make_qc(scheme, keys, 2, chain[2].block_id))  # lock view 1
    fork = Block(view=7, parent_id=GENESIS.block_id, proposer=1, payload=("fork",), justify_view=-1)
    tree.add(fork)
    assert not rules.safe_to_vote(fork, None)
    # With a justify newer than the lock the liveness clause admits it.
    newer_justify = make_qc(scheme, keys, 3, chain[3].block_id)
    assert rules.safe_to_vote(fork, newer_justify)


def test_three_chain_commit_rule(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    chain = make_chain(tree, 5)
    rules = SafetyRules(tree)
    # QC for view 2 completes the 3-chain (0,1,2) and commits view 0.
    committed = rules.commit_candidate(make_qc(scheme, keys, 2, chain[2].block_id))
    assert [b.view for b in committed] == [0]
    # QC for view 4 commits views 1 and 2.
    committed = rules.commit_candidate(make_qc(scheme, keys, 4, chain[4].block_id))
    assert [b.view for b in committed] == [1, 2]


def test_commit_rule_requires_consecutive_views(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    a = Block(view=0, parent_id=GENESIS.block_id, proposer=0)
    tree.add(a)
    b = Block(view=2, parent_id=a.block_id, proposer=1, justify_view=0)
    tree.add(b)
    c = Block(view=3, parent_id=b.block_id, proposer=2, justify_view=2)
    tree.add(c)
    rules = SafetyRules(tree)
    # Views 0,2,3 are not consecutive, so nothing commits.
    assert rules.commit_candidate(make_qc(scheme, keys, 3, c.block_id)) == []


def test_commit_is_monotonic(pki_and_keys, scheme):
    _, keys = pki_and_keys
    tree = BlockTree()
    chain = make_chain(tree, 6)
    rules = SafetyRules(tree)
    rules.commit_candidate(make_qc(scheme, keys, 4, chain[4].block_id))
    # Re-delivering an older QC commits nothing new.
    assert rules.commit_candidate(make_qc(scheme, keys, 2, chain[2].block_id)) == []


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
def test_ledger_orders_blocks_and_flattens_commands():
    ledger = Ledger(owner=0)
    a = Block(view=0, parent_id=GENESIS.block_id, proposer=0, payload=("a1", "a2"))
    b = Block(view=1, parent_id=a.block_id, proposer=1, payload=("b1",))
    ledger.commit(a, time=1.0)
    ledger.commit(b, time=2.0)
    assert len(ledger) == 2
    assert ledger.commands == ["a1", "a2", "b1"]
    assert ledger.entries[0].commit_time == 1.0


def test_ledger_rejects_out_of_order_commits():
    ledger = Ledger(owner=0)
    a = Block(view=5, parent_id=GENESIS.block_id, proposer=0)
    b = Block(view=3, parent_id=GENESIS.block_id, proposer=1)
    ledger.commit(a, time=1.0)
    with pytest.raises(SafetyViolation):
        ledger.commit(b, time=2.0)


def test_ledger_ignores_duplicate_commits():
    ledger = Ledger(owner=0)
    a = Block(view=0, parent_id=GENESIS.block_id, proposer=0)
    ledger.commit(a, time=1.0)
    ledger.commit(a, time=2.0)
    assert len(ledger) == 1


def test_ledgers_consistent_detects_prefix_relation():
    tree = BlockTree()
    chain = make_chain(tree, 3)
    l1, l2 = Ledger(0), Ledger(1)
    for block in chain:
        l1.commit(block, time=block.view)
    for block in chain[:2]:
        l2.commit(block, time=block.view)
    assert ledgers_consistent([l1, l2])


def test_ledgers_consistent_detects_divergence():
    tree = BlockTree()
    chain = make_chain(tree, 2)
    fork = Block(view=1, parent_id=chain[0].block_id, proposer=3, payload=("evil",))
    l1, l2 = Ledger(0), Ledger(1)
    l1.commit(chain[0], 0)
    l1.commit(chain[1], 1)
    l2.commit(chain[0], 0)
    l2.commit(fork, 1)
    assert not ledgers_consistent([l1, l2])
