"""Cross-runtime conformance suite: every named scenario, sim vs live.

The chaos layer's headline guarantee (ISSUE 7 acceptance): for *every*
scenario in the ``repro.faults`` registry, a zero-jitter live run on the
:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime` under a
:class:`~repro.runtime.asyncio_runtime.VirtualClock` — delay schedules
imposed by a :class:`~repro.runtime.chaos.FaultyTransport` — reaches
exactly the simulator's decisions and ledgers, across multiple seeds,
with zero safety violations and the injected-fault counters the scenario
implies.  A TCP wall-clock subset (marked ``tcp``) smoke-tests the real
socket lane, where the schedule is an approximation by design.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults.library import available_scenarios
from repro.runner import Campaign, Sweep, TcpCluster, run_live_scenario
from repro.runtime.chaos import BASE_FAULT_COUNTS

ALL_SCENARIOS = tuple(available_scenarios())

#: Faster knobs for scenarios whose defaults are sized for long runs: the
#: churn cycle must fit the test duration, and the calm/chaos waves must
#: actually reach a chaotic window before the run ends.
SCENARIO_OVERRIDES = {
    "crash_churn": {"downtime": 4.0, "period": 10.0, "cycles": 2},
    "calm_chaos_waves": {"calm_duration": 5.0, "chaos_duration": 5.0},
}

#: Fault counters each scenario must report (beyond the always-present
#: base set); corruption-only scenarios assert their kill/restart or
#: nothing, which still checks the counters attach and stay zero-clean.
EXPECTED_COUNTS = {
    "split_brain_at_gst": {"partition_epochs": 1, "partitioned_messages": 1},
    "split_then_silence": {"partition_epochs": 1, "partitioned_messages": 1},
    "rotating_leader_dos": {"dos_hits": 1},
    "flaky_half": {"chaos_windows": 1},
    "calm_chaos_waves": {"chaos_windows": 1},
    "view_sync_throttle": {"throttled_messages": 1},
    "proposal_throttle": {"throttled_messages": 1},
    "crash_churn": {"kills": 1, "restarts": 1},
}


def _config(name: str, seed: int, **overrides) -> ScenarioConfig:
    defaults = dict(
        n=4,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=5.0,
        duration=25.0,
        seed=seed,
        scenario=name,
        scenario_params=dict(SCENARIO_OVERRIDES.get(name, {})),
        record_trace=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _decisions(metrics):
    return [(d.view, d.leader, d.time) for d in metrics.decisions]


def _ledgers(replicas):
    return {pid: replica.ledger.block_ids for pid, replica in replicas.items()}


# ----------------------------------------------------------------------
# The conformance matrix: every scenario x three seeds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_live_run_matches_simulator(name, seed):
    config = _config(name, seed)
    sim = run_scenario(config)
    live = run_live_scenario(config)

    assert _decisions(live.metrics) == _decisions(sim.metrics)
    assert _ledgers(live.replicas) == _ledgers(sim.replicas)
    assert live.ledgers_are_consistent()
    assert sim.ledgers_are_consistent()
    assert live.committed_blocks() == sim.committed_blocks()
    # Same wire accounting: every send the simulated network minted, the
    # live transport minted too (and vice versa).
    assert live.transport.messages_sent == sim.network.messages_sent
    assert live.transport.messages_delivered == sim.network.messages_delivered


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_live_fault_counters(name):
    live = run_live_scenario(_config(name, 0))
    counts = live.fault_counts
    # Every scenario run reports the base counters, even at zero.
    assert set(BASE_FAULT_COUNTS) <= set(counts)
    for counter, floor in EXPECTED_COUNTS.get(name, {}).items():
        assert counts[counter] >= floor, (
            f"{name}: expected {counter} >= {floor}, got {counts}"
        )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_live_run_is_deterministic(name):
    first = run_live_scenario(_config(name, 1))
    second = run_live_scenario(_config(name, 1))
    assert _decisions(first.metrics) == _decisions(second.metrics)
    assert _ledgers(first.replicas) == _ledgers(second.replicas)
    assert first.fault_counts == second.fault_counts


# ----------------------------------------------------------------------
# Campaign integration: the whole registry under backend="live"
# ----------------------------------------------------------------------
def _build_scenario_cell(params):
    return _config(params["scenario"], params["seed"], duration=20.0)


def test_every_scenario_runs_under_the_live_campaign_backend(tmp_path):
    campaign = Campaign(
        name="chaos-conformance",
        build=_build_scenario_cell,
        sweeps=(Sweep("scenario", ALL_SCENARIOS),),
        fixed={"seed": 0},
    )
    cache = str(tmp_path / "cache")
    result = campaign.run(backend="live", cache=cache)
    assert len(result) == len(ALL_SCENARIOS)
    assert all(r.ledgers_consistent for r in result)
    assert all(r.key.startswith("live:") for r in result)
    # Fault counters flow into the picklable records.
    partition = result.one(scenario="split_brain_at_gst")
    assert partition.metrics.fault_count("partition_epochs") >= 1
    churn = result.one(scenario="crash_churn")
    assert churn.metrics.fault_count("kills") >= 1
    assert churn.metrics.fault_count("restarts") >= 1

    # The counters survive the JSON cache round trip.
    again = campaign.run(backend="live", cache=cache)
    assert again.cache_hits == len(ALL_SCENARIOS)
    cached = again.one(scenario="split_brain_at_gst")
    assert cached.metrics.fault_count("partition_epochs") >= 1


# ----------------------------------------------------------------------
# TCP wall-clock smoke subset (slow lane, marked for CI's live job)
# ----------------------------------------------------------------------
@pytest.mark.tcp
@pytest.mark.parametrize("name", ["split_brain_at_gst", "crash_churn"])
def test_tcp_cluster_runs_chaotic_scenarios(name):
    async def run():
        cluster = TcpCluster(
            _config(
                name, 0, delta=0.3, gst=2.0, duration=20.0,
                scenario_params={
                    "crash_churn": {"downtime": 2.0, "period": 5.0, "cycles": 1},
                }.get(name, dict(SCENARIO_OVERRIDES.get(name, {}))),
            )
        )
        def done(c):
            # Fast runs can commit three blocks before the first churn
            # window even opens; a chaotic smoke must outlive its fault.
            if c.min_committed() < 3:
                return False
            if name == "crash_churn":
                return c.fault_counters.as_dict()["kills"] >= 1
            return True

        try:
            await asyncio.wait_for(
                cluster.run(20.0, stop_when=done, poll=0.01), timeout=24.0
            )
            commits = cluster.min_committed()
            consistent = cluster.ledgers_are_consistent()
            counts = dict(cluster.fault_counters.as_dict())
        finally:
            await cluster.stop()
        return commits, consistent, counts

    commits, consistent, counts = asyncio.run(run())
    assert commits >= 3, f"only {commits} blocks within the wall-clock budget"
    assert consistent
    assert set(BASE_FAULT_COUNTS) <= set(counts)
    if name == "crash_churn":
        assert counts["kills"] >= 1
