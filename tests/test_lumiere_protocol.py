"""Integration tests for the Lumiere pacemaker driving chained HotStuff.

These tests exercise the full stack (simulator, network, crypto, consensus,
pacemaker) in small systems and check the properties the paper proves:
liveness after GST, safety regardless of faults, bounded honest clock gaps,
elimination of heavy epoch synchronisations in the steady state, and the
bounded damage of Byzantine leaders.
"""

from __future__ import annotations

import pytest

from repro.adversary.behaviours import (
    CrashBehaviour,
    EquivocatingBehaviour,
    MuteViewSyncBehaviour,
    SilentLeaderBehaviour,
    SlowLeaderBehaviour,
)
from repro.adversary.corruption import CorruptionPlan
from repro.adversary.attacks import spread_corruption, worst_case_clock_dispersion_model
from repro.core.config import LumiereConfig
from repro.experiments.scenario import ScenarioConfig, run_scenario


def scenario(n=4, duration=250.0, pacemaker="lumiere", **kwargs) -> ScenarioConfig:
    defaults = dict(
        n=n,
        pacemaker=pacemaker,
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=duration,
        record_trace=False,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# Liveness and responsiveness (fault-free)
# ----------------------------------------------------------------------
def test_fault_free_run_produces_many_decisions():
    result = run_scenario(scenario())
    assert result.honest_decisions() > 100
    assert result.committed_blocks() > 100
    assert result.ledgers_are_consistent()


def test_fault_free_run_is_optimistically_responsive():
    """Steady-state decision gaps are O(delta), far below Gamma."""
    result = run_scenario(scenario(duration=150.0))
    gaps = result.metrics.decision_gaps(after=20.0)
    assert gaps, "expected steady-state decisions"
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    assert max(gaps) < gamma / 4
    assert max(gaps) <= 6 * result.config.actual_delay + 1e-6


def test_heavy_syncs_stop_after_first_successful_epoch():
    """Theorem 1.1(4): only a constant number of heavy syncs happen."""
    result = run_scenario(scenario(duration=400.0))
    # The bootstrap heavy sync for epoch 0 is allowed; after the first
    # successful epoch no further heavy synchronisation may occur.
    assert result.metrics.epoch_syncs_after(0.0) <= 1
    assert result.metrics.epoch_syncs_after(50.0) == 0
    # The run crossed several epoch boundaries (epoch = 10n views = 40).
    assert result.max_honest_view() > 3 * 40


def test_basic_lumiere_heavy_syncs_every_epoch():
    result = run_scenario(scenario(pacemaker="basic-lumiere", duration=300.0))
    epoch_length = 2 * 4  # one leader round for basic lumiere at n=4
    views = result.max_honest_view()
    expected_epochs = views // epoch_length
    assert expected_epochs > 5
    # Basic Lumiere performs a heavy sync at (almost) every epoch boundary.
    assert result.metrics.epoch_syncs_after(0.0) >= expected_epochs - 2


def test_view_monotonicity_at_every_honest_replica():
    result = run_scenario(scenario(duration=120.0))
    for pid in result.corruption.honest_ids:
        entries = result.metrics.view_entries.get(pid, [])
        views = [view for _, view in entries]
        assert views == sorted(views)
        times = [time for time, _ in entries]
        assert times == sorted(times)


def test_epoch_boundaries_do_not_stall_fault_free_progress():
    """Crossing from epoch e to e+1 without heavy sync keeps the QC chain going."""
    result = run_scenario(scenario(duration=300.0))
    gaps = result.metrics.decision_gaps(after=20.0)
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    # Even at epoch boundaries the gap stays below a single Gamma.
    assert max(gaps) < gamma


# ----------------------------------------------------------------------
# Byzantine faults
# ----------------------------------------------------------------------
def test_silent_leader_causes_bounded_stall():
    """Eventual latency is O(f_a * Gamma): one silent leader costs at most ~2 Gamma."""
    config = scenario(duration=400.0)
    config.corruption = spread_corruption(config.protocol_config(), 1, SilentLeaderBehaviour)
    result = run_scenario(config)
    assert result.honest_decisions() > 30
    assert result.ledgers_are_consistent()
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    gaps = result.metrics.decision_gaps(after=50.0)
    # A faulty leader owns two consecutive views per leader round, and can own
    # the adjacent slots of two consecutive rounds (four views back to back);
    # the stall is bounded by a per-fault constant number of Gamma, never by n.
    assert max(gaps) <= 4 * gamma + 4 * result.config.delta


def test_progress_with_maximum_faults():
    config = scenario(n=7, duration=500.0)
    config.corruption = spread_corruption(config.protocol_config(), 2, SilentLeaderBehaviour)
    result = run_scenario(config)
    assert result.honest_decisions() > 20
    assert result.ledgers_are_consistent()


def test_safety_under_equivocating_leader():
    config = scenario(duration=300.0)
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [1], EquivocatingBehaviour
    )
    result = run_scenario(config)
    assert result.ledgers_are_consistent()
    assert result.honest_decisions() > 20


def test_progress_with_crashed_replica():
    config = scenario(duration=300.0)
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [2], lambda: CrashBehaviour(at_time=30.0)
    )
    result = run_scenario(config)
    decisions_after_crash = [d for d in result.metrics.honest_decisions() if d.time > 40.0]
    assert len(decisions_after_crash) > 10
    assert result.ledgers_are_consistent()


def test_progress_with_mute_view_sync_replica():
    config = scenario(duration=300.0)
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [3], MuteViewSyncBehaviour
    )
    result = run_scenario(config)
    assert result.honest_decisions() > 30
    assert result.ledgers_are_consistent()


def test_slow_leader_cannot_stall_past_its_views():
    config = scenario(duration=400.0)
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [1], lambda: SlowLeaderBehaviour(delay=30.0)
    )
    result = run_scenario(config)
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    gaps = result.metrics.decision_gaps(after=60.0)
    assert gaps
    # Bounded by a per-fault constant number of Gamma (up to four consecutive
    # views can belong to the slow leader), never by the epoch length.
    assert max(gaps) <= 4 * gamma + 6 * result.config.delta
    assert result.ledgers_are_consistent()


# ----------------------------------------------------------------------
# Partial synchrony: GST recovery
# ----------------------------------------------------------------------
def test_recovery_after_gst_with_pre_gst_chaos():
    config = scenario(n=4, duration=400.0, gst=40.0, seed=5)
    protocol_config = config.protocol_config()
    config.corruption = spread_corruption(protocol_config, 1, SilentLeaderBehaviour)
    config.delay_model = worst_case_clock_dispersion_model(
        protocol_config, config.actual_delay, pre_gst_max_delay=40.0
    )
    result = run_scenario(config)
    post_gst = [d for d in result.metrics.honest_decisions() if d.time > config.gst]
    assert len(post_gst) > 10
    assert result.ledgers_are_consistent()
    # Worst-case latency after GST is O(n * Delta); generous constant here.
    latency = result.metrics.latency_after(config.gst)
    assert latency is not None
    assert latency <= 30 * config.n * config.delta


def test_honest_clock_gap_stays_bounded_in_steady_state():
    """Lemma 5.9-flavoured check: once synchronised, the (f+1)-st honest clock
    gap never exceeds Gamma + Delta again."""
    config = scenario(duration=250.0, record_trace=False)
    result = run_scenario(config)
    gamma = 2 * (result.protocol_config.x + 2) * result.config.delta
    clocks = sorted(
        (replica.clock.read() for replica in result.honest_replicas), reverse=True
    )
    f = result.protocol_config.f
    gap = clocks[0] - clocks[f]
    assert gap <= gamma + result.config.delta + 1e-6


# ----------------------------------------------------------------------
# Configuration variants
# ----------------------------------------------------------------------
def test_small_epoch_configuration_still_live():
    config = scenario(duration=200.0)
    config.pacemaker_config = LumiereConfig(
        protocol=config.protocol_config(), epoch_rounds=1
    )
    result = run_scenario(config)
    assert result.honest_decisions() > 50
    assert result.ledgers_are_consistent()


def test_qc_production_deadline_blocks_very_late_qcs():
    """A leader delaying its QC past Gamma/2 - 2*Delta must not publish it."""
    config = scenario(duration=300.0)
    gamma = 2 * (config.protocol_config().x + 2) * config.delta
    late = gamma  # longer than the production deadline
    config.corruption = CorruptionPlan.uniform(
        config.protocol_config(), [1], lambda: SlowLeaderBehaviour(delay=late)
    )
    config.record_trace = True
    result = run_scenario(config)
    # The run still makes progress and never forks.
    assert result.honest_decisions() > 20
    assert result.ledgers_are_consistent()


def test_determinism_same_seed_same_outcome():
    a = run_scenario(scenario(duration=100.0, seed=7))
    b = run_scenario(scenario(duration=100.0, seed=7))
    assert a.honest_decisions() == b.honest_decisions()
    assert a.metrics.total_honest_messages == b.metrics.total_honest_messages
    assert [d.time for d in a.metrics.honest_decisions()] == [
        d.time for d in b.metrics.honest_decisions()
    ]
