"""Coalesced TCP writes: byte-stream equivalence, drop accounting, teardown errors.

The writer-coalescing optimisation (``TcpTransport(coalesce_writes=...)``)
follows the ``Network.batch_deliveries`` pattern: the fast path ships with a
toggle selecting the per-frame reference path, and a test proves the two are
observationally identical — here, that the *byte stream* a peer receives is
identical, which is the strongest statement possible for a framed protocol
(the receiver cannot even in principle distinguish the paths).
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.runtime import TcpTransport


def _frame(index: int, size: int = 40) -> bytes:
    body = (b"%06d" % index) * (size // 6)
    return len(body).to_bytes(4, "big") + body


async def _accumulating_server():
    """A server that appends every received byte to one buffer."""
    received = bytearray()
    done = asyncio.Event()

    async def on_connection(reader, writer):
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            received.extend(chunk)
            done.set()
        writer.close()

    server = await asyncio.start_server(on_connection, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, (host, port), received


async def _send_frames(address, frames, coalesce: bool) -> bytes:
    """Push ``frames`` through a writer task and return the peer's byte stream."""
    server, addr, received = address
    transport = TcpTransport(0, coalesce_writes=coalesce, connect_timeout=5.0)
    transport.set_peers({1: addr})
    for frame in frames:
        transport._enqueue_frame(1, frame)
    total = sum(len(frame) for frame in frames)
    loop = asyncio.get_running_loop()
    deadline = loop.time() + 10.0
    while len(received) < total and loop.time() < deadline:
        await asyncio.sleep(0.005)
    await transport.stop()
    return bytes(received)


@pytest.mark.tcp
@pytest.mark.parametrize("count", [1, 3, 200, 700])
def test_coalesced_writes_are_byte_stream_identical(count):
    """Same frames, both toggle positions, one byte stream.

    200 frames enqueued before the writer first wakes exercises real
    batches; 700 crosses MAX_COALESCED_FRAMES, so the cap path (multiple
    coalesced writes) is covered too.
    """
    frames = [_frame(i) for i in range(count)]
    expected = b"".join(frames)

    async def run(coalesce: bool) -> bytes:
        address = await _accumulating_server()
        try:
            return await _send_frames(address, frames, coalesce)
        finally:
            address[0].close()
            await address[0].wait_closed()

    fast = asyncio.run(run(True))
    reference = asyncio.run(run(False))
    assert fast == expected
    assert reference == expected
    assert fast == reference


@pytest.mark.tcp
def test_exhausted_connect_window_counts_dropped_frames():
    """A writer that dies of an unreachable peer counts the frames it held."""
    # Bind-then-close: a port that was ours a moment ago, now refusing.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_address = probe.getsockname()[:2]
    probe.close()

    async def run() -> TcpTransport:
        transport = TcpTransport(0, connect_timeout=0.3)
        transport.set_peers({1: dead_address})
        for i in range(3):
            transport._enqueue_frame(1, _frame(i))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        while transport.frames_dropped < 3 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await transport.stop()
        return transport

    transport = asyncio.run(run())
    assert transport.frames_dropped == 3
    assert "frames_dropped=3" in repr(transport)


@pytest.mark.tcp
def test_stop_collects_task_errors_instead_of_swallowing():
    """Teardown records non-cancellation task deaths in ``last_errors``."""

    async def run() -> TcpTransport:
        transport = TcpTransport(0)

        async def doomed_writer():
            raise RuntimeError("writer exploded mid-run")

        transport._writers[1] = asyncio.create_task(
            doomed_writer(), name="tcp-writer-0->1"
        )
        await asyncio.sleep(0.01)  # let the task die before teardown
        await transport.stop()
        return transport

    transport = asyncio.run(run())
    assert len(transport.last_errors) == 1
    assert "tcp-writer-0->1" in transport.last_errors[0]
    assert "writer exploded mid-run" in transport.last_errors[0]
    assert "teardown_errors=1" in repr(transport)
