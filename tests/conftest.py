"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.crypto.signatures import PKI
from repro.crypto.threshold import ThresholdScheme
from repro.sim.events import Simulator
from repro.sim.network import FixedDelay, Network, NetworkConfig
from repro.sim.process import SimContext
from repro.sim.tracing import TraceRecorder


@pytest.fixture
def protocol_config() -> ProtocolConfig:
    """A small n=4 (f=1) system with Delta=1."""
    return ProtocolConfig(n=4, delta=1.0, x=4)


@pytest.fixture
def larger_config() -> ProtocolConfig:
    """An n=7 (f=2) system."""
    return ProtocolConfig(n=7, delta=1.0, x=4)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(simulator: Simulator) -> Network:
    return Network(simulator, NetworkConfig(delta=1.0, gst=0.0, actual_delay=0.1), FixedDelay(0.1))


@pytest.fixture
def ctx(simulator: Simulator, network: Network) -> SimContext:
    return SimContext(sim=simulator, network=network, trace=TraceRecorder())


@pytest.fixture
def pki_and_keys(protocol_config: ProtocolConfig):
    pki, signing_keys = PKI.setup(protocol_config.processor_ids)
    return pki, signing_keys


@pytest.fixture
def scheme(pki_and_keys) -> ThresholdScheme:
    pki, _ = pki_and_keys
    return ThresholdScheme(pki)
