"""Equivalence of batched and per-recipient delivery, across delay models.

The network's batched send path (``Network.batch_deliveries = True``, the
default) proposes all recipient delays up front, groups deliveries by
identical deliver-time, and schedules one handle-free event per distinct
timestamp.  The per-recipient reference path schedules one event per
envelope.  These property-style tests assert the two paths are
*observationally identical* — same envelopes, same delivery times, same
delivery order, same decision sequences, commit ledgers and metrics totals —
across seeds and every shipped delay model, plus regression tests that the
handle-free ``schedule_fired`` lane respects the same-timestamp event
budget.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.sim.events import Simulator
from repro.sim.network import (
    AdversarialDelay,
    DelayModel,
    FixedDelay,
    Network,
    NetworkConfig,
    PendingSend,
    PreGSTChaos,
    TargetedDelay,
    UniformDelay,
)


class RecordingSink:
    """Minimal process recording (payload, sender, time) per delivery."""

    def __init__(self, pid: int, sim: Simulator) -> None:
        self.pid = pid
        self.sim = sim
        self.received: list[tuple[object, int, float]] = []

    def deliver(self, payload, sender):
        self.received.append((payload, sender, self.sim.now))


def delay_models() -> dict[str, DelayModel]:
    """One instance of every shipped delay-model family (fresh per call)."""
    return {
        "fixed": FixedDelay(0.25),
        "uniform": UniformDelay(0.05, 0.8),
        "targeted": TargetedDelay(
            UniformDelay(0.05, 0.3), targets=[1, 4], target_delay=0.9, direction="both"
        ),
        "adversarial": AdversarialDelay(
            lambda info, sim: 0.1 + 0.05 * ((info.sender + info.recipient) % 7),
            name="sum-mod-7",
        ),
        "pre-gst-chaos": PreGSTChaos(UniformDelay(0.05, 0.2), pre_gst_max_delay=10.0),
        # Half the messages land at the send instant: exercises delivery
        # ordering when the self-copy and zero-delay peers share a timestamp
        # (the self-copy must keep its pid-order position in the batch).
        "zero-or-slow": AdversarialDelay(
            lambda info, sim: 0.0 if (info.sender + info.recipient) % 2 else 0.35,
            name="zero-or-slow",
        ),
        "all-zero": FixedDelay(0.0),
    }


def run_workload(model: DelayModel, seed: int, batch: bool):
    """A mixed broadcast/multicast/unicast workload; returns the full trace.

    The trace captures everything either send path can influence: every
    envelope's metadata in send order, every delivery in execution order,
    and the kernel's RNG stream position at the end (equal streams mean the
    batched path drew the same random delays in the same order).
    """
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        NetworkConfig(delta=1.0, gst=2.0, actual_delay=0.9, pre_gst_max_delay=10.0),
        model,
        batch_deliveries=batch,
    )
    sinks = [RecordingSink(i, sim) for i in range(7)]
    for sink in sinks:
        net.register(sink)
    sent: list[tuple] = []
    net.send_listeners.append(
        lambda e: sent.append((e.msg_id, e.sender, e.recipient, e.send_time, e.deliver_time))
    )

    def burst(round_index: int) -> None:
        sender = round_index % 7
        net.broadcast(sender, ("bcast", round_index))
        net.multicast((sender + 1) % 7, [0, 3, 5], ("multi", round_index))
        net.send(sender, (sender + 2) % 7, ("uni", round_index))

    for round_index in range(12):
        sim.schedule(0.4 * round_index, burst, round_index)
    sim.run(until=20.0)

    deliveries = [
        (sink.pid, payload, sender, time)
        for sink in sinks
        for payload, sender, time in sink.received
    ]
    per_sink_order = {sink.pid: list(sink.received) for sink in sinks}
    return {
        "sent": sent,
        "deliveries": sorted(deliveries),
        "per_sink_order": per_sink_order,
        "rng_probe": sim.rng.random(),
        "messages_sent": net.messages_sent,
        "messages_delivered": net.messages_delivered,
    }


@pytest.mark.parametrize("model_name", sorted(delay_models()))
@pytest.mark.parametrize("seed", [0, 7, 91])
def test_batched_and_reference_paths_produce_identical_traces(model_name, seed):
    batched = run_workload(delay_models()[model_name], seed, batch=True)
    reference = run_workload(delay_models()[model_name], seed, batch=False)
    assert batched == reference


class PropagationDelay(DelayModel):
    """A model that only implements ``propose_delay``: exercises the default
    (looping) ``propose_delays`` used by the batched path."""

    def propose_delay(self, envelope_info: PendingSend, sim: Simulator) -> float:
        return 0.05 + sim.rng.random() * 0.4


def test_default_propose_delays_preserves_the_rng_stream():
    batched = run_workload(PropagationDelay(), seed=3, batch=True)
    reference = run_workload(PropagationDelay(), seed=3, batch=False)
    assert batched == reference


def test_propose_delays_returning_wrong_length_is_rejected():
    class Broken(FixedDelay):
        def __init__(self):
            super().__init__(0.1)

        def propose_delays(self, sends, sim):
            return [0.1]  # wrong length for any multi-recipient send

        def constant_delay(self):
            return None  # force the variable-delay batched path

    sim = Simulator(seed=0)
    net = Network(sim, NetworkConfig(), Broken())
    sinks = [RecordingSink(i, sim) for i in range(3)]
    for sink in sinks:
        net.register(sink)
    with pytest.raises(SimulationError, match="propose_delays"):
        net.broadcast(0, "payload")


def scenario_pair(model: DelayModel, seed: int, pacemaker: str = "lumiere"):
    """Run one scenario twice — batched and reference delivery — and return both."""
    results = []
    for batch in (True, False):
        config = ScenarioConfig(
            n=7,
            pacemaker=pacemaker,
            delta=1.0,
            actual_delay=0.5,
            gst=0.0,
            duration=40.0,
            seed=seed,
            delay_model=model,
            record_trace=False,
        )
        result = build_scenario(config)
        result.network.batch_deliveries = batch
        for replica in result.replicas.values():
            replica.start()
        result.simulator.run(until=config.duration)
        results.append(result)
    return results


@pytest.mark.parametrize("seed", [0, 5])
def test_scenario_runs_are_equivalent_under_batched_delivery(seed):
    model = UniformDelay(0.05, 0.45)
    batched, reference = scenario_pair(model, seed)

    batched_decisions = [
        (d.time, d.view, d.leader) for d in batched.metrics.honest_decisions()
    ]
    reference_decisions = [
        (d.time, d.view, d.leader) for d in reference.metrics.honest_decisions()
    ]
    assert batched_decisions == reference_decisions
    assert len(batched_decisions) > 5  # the runs actually made progress

    batched_ledgers = [r.ledger.block_ids for r in batched.honest_replicas]
    reference_ledgers = [r.ledger.block_ids for r in reference.honest_replicas]
    assert batched_ledgers == reference_ledgers

    assert (
        batched.metrics.total_honest_messages
        == reference.metrics.total_honest_messages
    )
    assert batched.metrics.message_kinds_between(0.0, float("inf")) == (
        reference.metrics.message_kinds_between(0.0, float("inf"))
    )
    assert batched.network.messages_delivered == reference.network.messages_delivered
    # Continuous random delays rarely collide, so grouping may not merge
    # anything — but it must never add events.
    assert batched.simulator.events_processed <= reference.simulator.events_processed


def test_batched_delivery_merges_events_under_discrete_delays():
    """With delays on a lattice, many recipients share a deliver-time and the
    batched path executes strictly fewer kernel events for the same trace."""
    model_factory = lambda: AdversarialDelay(
        lambda info, sim: 0.2 + 0.1 * ((info.sender + info.recipient) % 3),
        name="lattice",
    )
    batched, reference = scenario_pair(model_factory(), seed=1)
    assert [
        (d.time, d.view, d.leader) for d in batched.metrics.honest_decisions()
    ] == [(d.time, d.view, d.leader) for d in reference.metrics.honest_decisions()]
    assert [r.ledger.block_ids for r in batched.honest_replicas] == [
        r.ledger.block_ids for r in reference.honest_replicas
    ]
    assert batched.network.messages_delivered == reference.network.messages_delivered
    assert batched.simulator.events_processed < reference.simulator.events_processed


# ----------------------------------------------------------------------
# schedule_fired and the same-timestamp event budget
# ----------------------------------------------------------------------
def test_schedule_fired_chain_respects_the_event_budget():
    sim = Simulator()
    sim.MAX_EVENTS_PER_TIMESTAMP = 50

    def reschedule():
        sim.schedule_fired(0.0, reschedule)

    sim.schedule_fired(0.0, reschedule)
    with pytest.raises(SimulationError, match="timestamp"):
        sim.run(until=10.0)
    assert sim.now == 0.0


def test_zero_delay_batched_deliveries_respect_the_event_budget():
    """A zero-delay *network* chain through the batched path still trips the
    guard instead of livelocking ``run(until=...)``."""
    sim = Simulator(seed=1)
    sim.MAX_EVENTS_PER_TIMESTAMP = 100
    net = Network(sim, NetworkConfig(delta=1.0, actual_delay=0.1), FixedDelay(0.0))

    class Echo(RecordingSink):
        def deliver(self, payload, sender):
            super().deliver(payload, sender)
            net.broadcast(self.pid, payload, include_self=False)

    for pid in range(3):
        net.register(Echo(pid, sim))
    net.broadcast(0, "storm", include_self=False)
    with pytest.raises(SimulationError, match="timestamp"):
        sim.run(until=5.0)


def test_schedule_fired_interleaves_with_handles_in_insertion_order():
    sim = Simulator()
    order: list[str] = []
    sim.schedule(1.0, order.append, "handle-1")
    sim.schedule_fired(1.0, order.append, "fired-1")
    sim.schedule(1.0, order.append, "handle-2")
    sim.schedule_fired_at(1.0, order.append, "fired-2")
    sim.run()
    assert order == ["handle-1", "fired-1", "handle-2", "fired-2"]


def test_schedule_fired_rejects_negative_delay_and_past_times():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fired(-0.1, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_fired_at(0.5, lambda: None)


def test_schedule_fired_events_count_and_survive_compaction():
    sim = Simulator()
    sim.COMPACTION_MIN_CANCELLED = 2
    fired: list[int] = []
    sim.schedule_fired(2.0, fired.append, 1)
    doomed = [sim.schedule(0.5 + i, lambda: fired.append(-1)) for i in range(5)]
    for handle in doomed:
        handle.cancel()  # triggers an in-place compaction sweep
    sim.run()
    assert fired == [1]
    assert sim.events_processed == 1
