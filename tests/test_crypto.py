"""Unit and property tests for the simulated cryptography layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import digest
from repro.crypto.signatures import KeyPair, PKI
from repro.crypto.threshold import ThresholdScheme
from repro.errors import CryptoError, InvalidSignature, ThresholdError


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------
def test_digest_is_deterministic():
    assert digest("a", 1, (2, 3)) == digest("a", 1, (2, 3))


def test_digest_distinguishes_inputs():
    assert digest("a", 1) != digest("a", 2)
    assert digest(("a", "b")) != digest(("ab",))


def test_digest_handles_sets_and_dicts_stably():
    assert digest({3, 1, 2}) == digest({2, 3, 1})
    assert digest({"k": 1, "j": 2}) == digest({"j": 2, "k": 1})


@settings(max_examples=50, deadline=None)
@given(a=st.text(max_size=20), b=st.text(max_size=20))
def test_digest_concatenation_is_not_ambiguous(a, b):
    """Hashing parts separately differs from hashing their concatenation."""
    if a and b:
        assert digest(a, b) == digest(a, b)
        assert digest(a + b) == digest(a + b)
        # Distinct structures should (overwhelmingly) hash differently.
        if a != b:
            assert digest(a, b) != digest(b, a)


# ----------------------------------------------------------------------
# Signatures and PKI
# ----------------------------------------------------------------------
def test_sign_and_verify_roundtrip():
    pair = KeyPair.generate(owner=3)
    signature = pair.signing.sign(("vote", 7))
    assert pair.verifying.verify(signature, ("vote", 7))


def test_signature_fails_on_tampered_message():
    pair = KeyPair.generate(owner=3)
    signature = pair.signing.sign(("vote", 7))
    assert not pair.verifying.verify(signature, ("vote", 8))


def test_signature_fails_for_wrong_signer():
    alice = KeyPair.generate(owner=1)
    bob = KeyPair.generate(owner=2)
    signature = alice.signing.sign("msg")
    assert not bob.verifying.verify(signature, "msg")


def test_pki_setup_and_verification(protocol_config):
    pki, keys = PKI.setup(protocol_config.processor_ids)
    assert pki.processor_ids == list(protocol_config.processor_ids)
    signature = keys[2].sign("hello")
    pki.verify(signature, "hello")
    assert pki.is_valid(signature, "hello")
    assert not pki.is_valid(signature, "tampered")


def test_pki_rejects_unknown_signer(protocol_config):
    pki, keys = PKI.setup(protocol_config.processor_ids)
    with pytest.raises(CryptoError):
        pki.verifying_key(99)


def test_forged_proof_rejected(protocol_config):
    pki, keys = PKI.setup(protocol_config.processor_ids)
    signature = keys[0].sign("msg")
    forged = type(signature)(signer=1, message_digest=signature.message_digest, proof=signature.proof)
    with pytest.raises(InvalidSignature):
        pki.verify(forged, "msg")


# ----------------------------------------------------------------------
# Threshold signatures
# ----------------------------------------------------------------------
def test_threshold_combine_and_verify(scheme, pki_and_keys, protocol_config):
    _, keys = pki_and_keys
    message = ("qc", 5, "blockhash")
    partials = [scheme.partial_sign(keys[i], message) for i in range(3)]
    aggregate = scheme.combine(partials, threshold=3, message=message)
    assert scheme.verify(aggregate, message)
    assert aggregate.size == 3
    assert aggregate.signers == frozenset({0, 1, 2})


def test_threshold_rejects_insufficient_shares(scheme, pki_and_keys):
    _, keys = pki_and_keys
    message = ("qc", 5, "h")
    partials = [scheme.partial_sign(keys[i], message) for i in range(2)]
    with pytest.raises(ThresholdError):
        scheme.combine(partials, threshold=3, message=message)


def test_threshold_ignores_duplicate_signers(scheme, pki_and_keys):
    _, keys = pki_and_keys
    message = ("qc", 1, "h")
    partials = [scheme.partial_sign(keys[0], message)] * 5
    with pytest.raises(ThresholdError):
        scheme.combine(partials, threshold=2, message=message)


def test_threshold_ignores_shares_for_other_messages(scheme, pki_and_keys):
    _, keys = pki_and_keys
    good = [scheme.partial_sign(keys[i], ("qc", 1)) for i in range(2)]
    stray = [scheme.partial_sign(keys[3], ("qc", 2))]
    with pytest.raises(ThresholdError):
        scheme.combine(good + stray, threshold=3, message=("qc", 1))


def test_threshold_verify_fails_on_wrong_message(scheme, pki_and_keys):
    _, keys = pki_and_keys
    message = ("qc", 5, "h")
    partials = [scheme.partial_sign(keys[i], message) for i in range(3)]
    aggregate = scheme.combine(partials, threshold=3, message=message)
    assert not scheme.verify(aggregate, ("qc", 6, "h"))


def test_threshold_rejects_nonpositive_threshold(scheme):
    with pytest.raises(ThresholdError):
        scheme.combine([], threshold=0, message="m")


def test_partial_verification(scheme, pki_and_keys):
    _, keys = pki_and_keys
    partial = scheme.partial_sign(keys[1], "msg")
    assert scheme.verify_partial(partial, "msg")
    assert not scheme.verify_partial(partial, "other")


@settings(max_examples=30, deadline=None)
@given(
    signer_count=st.integers(min_value=1, max_value=7),
    threshold=st.integers(min_value=1, max_value=7),
)
def test_threshold_combination_succeeds_iff_enough_distinct_signers(signer_count, threshold):
    pki, keys = PKI.setup(range(7))
    scheme = ThresholdScheme(pki)
    message = ("property", signer_count, threshold)
    partials = [scheme.partial_sign(keys[i], message) for i in range(signer_count)]
    if signer_count >= threshold:
        aggregate = scheme.combine(partials, threshold=threshold, message=message)
        assert scheme.verify(aggregate, message)
        assert aggregate.size == signer_count
    else:
        with pytest.raises(ThresholdError):
            scheme.combine(partials, threshold=threshold, message=message)
