"""Unit tests for the discrete-event simulator kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_processed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == ["first", "second", "third"]


def test_schedule_with_args():
    sim = Simulator()
    received = []
    sim.schedule(1.0, lambda a, b: received.append((a, b)), 1, "x")
    sim.run()
    assert received == [(1, "x")]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.pending


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_until_advances_time_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_execution_run_later():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_rng_is_deterministic_per_seed():
    a = Simulator(seed=7).rng.random()
    b = Simulator(seed=7).rng.random()
    c = Simulator(seed=8).rng.random()
    assert a == b
    assert a != c


def test_handle_reports_fired_state():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    sim.run()
    assert handle.fired
    assert not handle.pending


# ----------------------------------------------------------------------
# Lazy cancellation: active_events and heap compaction
# ----------------------------------------------------------------------
def test_active_events_excludes_cancelled_entries():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert sim.active_events == 6
    assert sim.pending_events == 6
    for handle in handles[:4]:
        handle.cancel()
    assert sim.active_events == 2
    # Cancellation is lazy: the heap still holds the cancelled entries.
    assert sim.pending_events >= sim.active_events


def test_cancel_is_idempotent_for_the_active_count():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.active_events == 0


def test_cancel_after_firing_does_not_corrupt_the_active_count():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    handle.cancel()  # no-op: already fired
    assert sim.active_events == 0
    assert sim.pending_events == 0


def test_compaction_prunes_cancelled_entries_from_the_heap():
    sim = Simulator()
    sim.COMPACTION_MIN_CANCELLED = 4  # shrink the threshold for the test
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[:6]:
        handle.cancel()
    # 6 cancelled >= 4 and 6*2 > 10: the sweep runs and the heap shrinks.
    assert sim.pending_events == 4
    assert sim.active_events == 4


def test_execution_order_survives_compaction():
    sim = Simulator()
    sim.COMPACTION_MIN_CANCELLED = 2
    order = []
    keep = [sim.schedule(float(i + 1), order.append, i) for i in range(5)]
    doomed = [sim.schedule(0.5 + i, lambda: order.append("bad")) for i in range(5)]
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert order == [0, 1, 2, 3, 4]
    assert all(handle.fired for handle in keep)


# ----------------------------------------------------------------------
# Same-timestamp event budget (zero-delay livelock guard)
# ----------------------------------------------------------------------
def test_zero_delay_event_chain_raises_instead_of_livelocking():
    sim = Simulator()
    sim.MAX_EVENTS_PER_TIMESTAMP = 50  # shrink the budget for the test

    def reschedule():
        sim.schedule(0.0, reschedule)

    sim.schedule(0.0, reschedule)
    with pytest.raises(SimulationError, match="timestamp"):
        sim.run(until=10.0)
    assert sim.now == 0.0  # virtual time never advanced


def test_event_budget_resets_when_time_advances():
    sim = Simulator()
    sim.MAX_EVENTS_PER_TIMESTAMP = 10
    fired = []

    def advance():
        fired.append(sim.now)
        if len(fired) < 50:
            sim.schedule(0.1, advance)

    sim.schedule(0.1, advance)
    sim.run()  # 50 events, but only one per timestamp: never trips the budget
    assert len(fired) == 50


def test_event_budget_allows_bursts_within_the_cap():
    sim = Simulator()
    sim.MAX_EVENTS_PER_TIMESTAMP = 10
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_repr_reports_active_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert "active=1" in repr(sim)
