"""Unit tests for the metrics collector and the Table-1 summaries."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import summarize_run
from repro.sim.network import Envelope


def envelope(sender: int, recipient: int, time: float, payload: object = "m") -> Envelope:
    return Envelope(
        msg_id=0, sender=sender, recipient=recipient, payload=payload, send_time=time,
        deliver_time=time + 0.1,
    )


def collector_with_honest(honest=(0, 1, 2)) -> MetricsCollector:
    metrics = MetricsCollector()
    metrics.set_honest(honest)
    return metrics


def test_only_honest_non_self_messages_are_counted():
    metrics = collector_with_honest(honest=(0, 1))
    metrics.on_send(envelope(0, 1, 1.0))
    metrics.on_send(envelope(0, 0, 1.0))  # self message: ignored
    metrics.on_send(envelope(3, 1, 1.0))  # byzantine sender: ignored
    assert metrics.total_honest_messages == 1


def test_messages_between_uses_half_open_interval():
    metrics = collector_with_honest()
    for t in (1.0, 2.0, 3.0, 4.0):
        metrics.on_send(envelope(0, 1, t))
    assert metrics.messages_between(2.0, 4.0) == 2
    assert metrics.messages_between(0.0, float("inf")) == 4


def test_message_kind_breakdown():
    metrics = collector_with_honest()
    metrics.on_send(envelope(0, 1, 1.0, payload=123))
    metrics.on_send(envelope(0, 1, 2.0, payload="text"))
    kinds = metrics.message_kinds_between(0.0, 10.0)
    assert kinds == {"int": 1, "str": 1}


def test_first_honest_decision_and_w_t():
    metrics = collector_with_honest(honest=(0, 1, 2))
    metrics.on_send(envelope(0, 1, 1.0))
    metrics.on_send(envelope(1, 2, 2.0))
    metrics.record_decision(time=1.5, view=3, leader=5)   # byzantine leader: not t*
    metrics.record_decision(time=2.5, view=4, leader=1)   # honest leader
    decision = metrics.first_honest_decision_after(0.0)
    assert decision is not None and decision.time == 2.5
    assert metrics.communication_after(0.0) == 2
    assert metrics.latency_after(0.0) == pytest.approx(2.5)


def test_w_t_is_none_without_subsequent_decision():
    metrics = collector_with_honest()
    metrics.record_decision(time=1.0, view=0, leader=0)
    assert metrics.communication_after(5.0) is None
    assert metrics.latency_after(5.0) is None


def test_decision_gaps_and_messages_per_gap():
    metrics = collector_with_honest(honest=(0, 1, 2))
    for time in (1.0, 3.0, 6.0):
        metrics.record_decision(time=time, view=int(time), leader=0)
    metrics.on_send(envelope(0, 1, 2.0))
    metrics.on_send(envelope(0, 1, 4.0))
    metrics.on_send(envelope(0, 1, 5.0))
    assert metrics.decision_gaps(after=0.0) == [pytest.approx(2.0), pytest.approx(3.0)]
    assert metrics.messages_per_gap(after=0.0) == [1, 2]


def test_epoch_sync_counting_only_counts_honest_and_distinct_epochs():
    metrics = collector_with_honest(honest=(0, 1))
    metrics.record_epoch_sync(pid=0, epoch=1, time=5.0)
    metrics.record_epoch_sync(pid=1, epoch=1, time=6.0)
    metrics.record_epoch_sync(pid=0, epoch=2, time=9.0)
    metrics.record_epoch_sync(pid=3, epoch=7, time=9.0)  # byzantine: ignored
    assert metrics.epoch_syncs_after(0.0) == 2
    assert metrics.epoch_syncs_after(8.0) == 1


def test_view_entries_and_max_view():
    metrics = collector_with_honest()
    metrics.record_view_entry(pid=0, view=1, time=1.0)
    metrics.record_view_entry(pid=0, view=4, time=2.0)
    assert metrics.max_view_entered(0) == 4
    assert metrics.max_view_entered(9) == -1


def test_summary_computes_table1_measures():
    metrics = collector_with_honest(honest=(0, 1, 2))
    gst = 10.0
    # Two messages after GST+Delta, first honest decision at 13.
    metrics.on_send(envelope(0, 1, 11.5))
    metrics.on_send(envelope(1, 2, 12.0))
    for i, time in enumerate((13.0, 14.0, 15.0, 17.0, 20.0, 24.0, 29.0)):
        metrics.record_decision(time=time, view=i, leader=0)
    summary = summarize_run(
        metrics, protocol="lumiere", n=4, f_actual=0, gst=gst, delta=1.0, warmup_decisions=2
    )
    assert summary.worst_case_communication == 2
    assert summary.worst_case_latency == pytest.approx(3.0)
    # Warmup is the 3rd decision (t=15); the largest later gap is 29-24=5.
    assert summary.eventual_latency == pytest.approx(5.0)
    assert summary.decisions == 7
    assert summary.protocol == "lumiere"


def test_summary_handles_runs_without_decisions():
    metrics = collector_with_honest()
    summary = summarize_run(metrics, protocol="x", n=4, f_actual=1, gst=0.0, delta=1.0)
    assert summary.decisions == 0
    assert summary.worst_case_latency is None
    assert summary.eventual_communication is None
    assert summary.as_row()["protocol"] == "x"
