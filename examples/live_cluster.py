#!/usr/bin/env python3
"""Live cluster: an n=4 Lumiere deployment over real TCP sockets.

The same protocol objects the simulator executes — replicas, the chained
HotStuff engine, the Lumiere pacemaker — boot here as asyncio tasks, one
node per :class:`~repro.runtime.tcp.TcpTransport`, exchanging
length-prefixed frames (compact binary by default, JSON via
``--codec json``) over localhost TCP and committing blocks in real
(wall-clock) time.  The run stops as soon as every node's ledger holds
the target number of blocks, then prints wall-clock latency and throughput
figures recorded by the ordinary metrics collector through the monotonic
clock behind the :class:`~repro.runtime.base.Clock` seam.

Run with:  python examples/live_cluster.py
           python examples/live_cluster.py --n 4 --blocks 20 --timeout 30
           python examples/live_cluster.py --codec json   # JSON wire format
           python examples/live_cluster.py --procs 4      # one OS process per node

``--procs`` switches to process placement: the nodes boot in spawned OS
processes (``--procs N`` workers; ``--procs 0`` means one per node) with
the parent coordinating over control pipes — the multicore deployment
shape.  Exits non-zero if the cluster fails to commit the target within
the timeout (the CI live-smoke job relies on this).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.experiments import ScenarioConfig
from repro.runner import make_live_cluster
from repro.runtime import available_codecs


async def run_cluster(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        n=args.n,
        pacemaker=args.pacemaker,
        delta=args.delta,       # the known bound Delta, now in wall-clock seconds
        duration=args.timeout,
        seed=0,
        record_trace=False,
    )
    placement = "inline" if args.procs is None else "process"
    processes = None if args.procs in (None, 0) else args.procs
    cluster = make_live_cluster(
        config, placement=placement, codec=args.codec, processes=processes
    )
    print(
        f"booting n={args.n} {args.pacemaker} cluster over TCP on localhost "
        f"({args.codec} codec, {placement} placement)..."
    )
    started = time.monotonic()
    await cluster.start()
    if placement == "inline":
        addresses = {pid: node.transport.address for pid, node in sorted(cluster.nodes.items())}
        for pid, (host, port) in addresses.items():
            print(f"  node {pid}: listening on {host}:{port}")
    else:
        for worker in cluster._workers:
            print(f"  worker {worker.index}: hosting nodes {list(worker.pids)}")
    run_started = time.monotonic()

    commits = await cluster.run_until_commits(args.blocks, timeout=args.timeout)
    now = time.monotonic()
    elapsed, run_elapsed = now - started, now - run_started
    await cluster.stop()
    consistent = cluster.ledgers_are_consistent()
    decisions = len(cluster.metrics.honest_decisions())
    if placement == "inline":
        sent = sum(node.transport.messages_sent for node in cluster.nodes.values())
        commits_total = sum(len(node.replica.ledger) for node in cluster.nodes.values())
    else:
        sent = cluster.messages_sent
        commits_total = sum(len(ids) for ids in cluster.ledger_ids.values())

    print()
    print(
        f"live cluster run (n={args.n}, {args.pacemaker}, Delta={args.delta}s, "
        f"{args.codec} codec, {placement} placement)"
    )
    print("-" * 48)
    print(f"blocks committed (every node)  : {commits}")
    print(f"honest-leader decisions        : {decisions}")
    print(f"messages on the wire           : {sent}")
    print(f"wall-clock time                : {elapsed:.2f}s")
    if commits:
        print(f"throughput                     : {commits / run_elapsed:.1f} blocks/s")
        print(
            f"aggregate commit throughput    : {commits_total / run_elapsed:.1f} "
            f"ledger entries/s across {args.n} nodes"
        )
    print(f"ledgers consistent             : {consistent}")
    if cluster.teardown_errors:
        print(f"teardown errors                : {cluster.teardown_errors}")

    if commits < args.blocks:
        print(f"FAILED: only {commits}/{args.blocks} blocks within {args.timeout}s",
              file=sys.stderr)
        return 1
    if not consistent:
        print("FAILED: ledgers diverged", file=sys.stderr)
        return 1
    print(f"OK: {commits} blocks committed on all {args.n} nodes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument("--blocks", type=int, default=10,
                        help="stop once every ledger holds this many blocks")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="wall-clock budget in seconds")
    parser.add_argument("--delta", type=float, default=0.2,
                        help="known delay bound Delta in seconds")
    parser.add_argument("--pacemaker", default="lumiere",
                        help="view-synchronisation protocol (default lumiere)")
    parser.add_argument("--codec", default="binary", choices=available_codecs(),
                        help="wire format for TCP frames (default binary)")
    parser.add_argument("--procs", type=int, default=None, metavar="N",
                        help="process placement: spawn N node-hosting OS "
                             "processes (0 = one per node); omit for inline")
    args = parser.parse_args()
    return asyncio.run(run_cluster(args))


if __name__ == "__main__":
    sys.exit(main())
