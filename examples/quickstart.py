#!/usr/bin/env python3
"""Quickstart: run Lumiere + chained HotStuff in the simulator.

Builds a 4-processor, fault-free deployment, runs it for 120 time units of
virtual time, and prints what the system did: how many consensus decisions
honest leaders produced, how fast they came, how many messages were spent,
and a short excerpt of the protocol trace around the first epoch boundary.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import ScenarioConfig, run_scenario


def main() -> None:
    config = ScenarioConfig(
        n=4,                # 4 processors => tolerates f = 1 Byzantine fault
        pacemaker="lumiere",
        delta=1.0,          # the known post-GST bound Delta
        actual_delay=0.1,   # the actual network delay delta (unknown to the protocol)
        gst=0.0,            # the network is synchronous from the start
        duration=120.0,     # virtual time to simulate
        record_trace=True,
    )
    result = run_scenario(config)
    summary = result.summary()

    print("Lumiere quickstart (n=4, fault-free)")
    print("-" * 48)
    print(f"honest-leader decisions        : {summary.decisions}")
    print(f"committed blocks               : {result.committed_blocks()}")
    print(f"highest view reached           : {result.max_honest_view()}")
    print(f"honest messages sent           : {summary.total_messages}")
    print(f"steady-state worst decision gap: {summary.eventual_latency:.3f} "
          f"(= O(delta), delta = {config.actual_delay})")
    print(f"heavy epoch syncs after warmup : {summary.heavy_syncs_after_warmup}")
    print(f"honest ledgers consistent      : {result.ledgers_are_consistent()}")
    print()

    # Show the first few pacemaker-level events of processor 0.
    print("Trace excerpt (processor 0):")
    shown = 0
    for event in result.trace.for_pid(0):
        if event.kind in {"enter_view", "qc_produced", "lumiere_success_criterion",
                          "lumiere_epoch_view_sent"}:
            print(f"  {event}")
            shown += 1
        if shown >= 12:
            break


if __name__ == "__main__":
    main()
