#!/usr/bin/env python3
"""The named scenario library: adversarial schedules as one-line configs.

Every entry in :mod:`repro.faults.library` is a named, parameterised
adversarial setup — partitions, rotating leader denial-of-service,
traffic-class throttling, crash/recovery churn — that a ``ScenarioConfig``
references by name:

    ScenarioConfig(pacemaker="lumiere", gst=20.0, scenario="split_brain_at_gst")

and that campaigns sweep like any other axis.  This example lists the
catalogue, runs a few scenarios against two pacemakers, and prints the
pacemaker x scenario comparison the gauntlet benchmark produces in full.

Run with:  PYTHONPATH=src python examples/adversarial_scenarios.py
"""

from __future__ import annotations

import os

from repro.experiments import ScenarioConfig, gauntlet_table, run_scenario, scenario_gauntlet
from repro.faults import get_scenario, scenario_catalogue

SCENARIOS = ("split_brain_at_gst", "rotating_leader_dos", "crash_churn", "view_sync_throttle")
PACEMAKERS = ("lumiere", "lp22")


def main() -> None:
    print("The scenario library")
    print("-" * 72)
    for entry in scenario_catalogue():
        print(f"{entry.name:<22} {entry.intent}")
    print()

    # One scenario, in full: a partition that heals exactly at GST.
    print("One run: lumiere under split_brain_at_gst (n=7, GST=20)")
    config = ScenarioConfig(
        n=7,
        pacemaker="lumiere",
        gst=20.0,
        duration=140.0,
        seed=0,
        record_trace=False,
        scenario="split_brain_at_gst",
    )
    result = run_scenario(config)
    print(f"  decisions={result.honest_decisions()} "
          f"committed={result.committed_blocks()} "
          f"safe={result.ledgers_are_consistent()}")
    print()

    # Scenario parameters are overridable per run:
    entry = get_scenario("rotating_leader_dos")
    knobs = ", ".join(f"{p.name} (default {p.default})" for p in entry.parameters)
    print(f"rotating_leader_dos knobs: {knobs}")
    print()

    # The comparison the gauntlet benchmark runs across the full library:
    print(f"Gauntlet excerpt: {PACEMAKERS} x {SCENARIOS} — decisions")
    cells = scenario_gauntlet(
        PACEMAKERS,
        SCENARIOS,
        n=7,
        gst=20.0,
        duration=170.0,
        backend=os.environ.get("REPRO_BACKEND", "serial"),
        cache=os.environ.get("REPRO_CACHE") or None,
    )
    print(gauntlet_table(cells, measure="decisions"))
    print()
    print("Worst post-GST decision gap")
    print(gauntlet_table(cells, measure="max_gap"))
    print()
    print("Every scenario stays inside the partial-synchrony envelope, so safety")
    print("and liveness are required everywhere; what varies is how much latency")
    print("the adversary extracts — the separation the paper is about.")


if __name__ == "__main__":
    main()
