#!/usr/bin/env python3
"""Client workload: a replicated key-value store fed by real client traffic.

Consensus on its own orders synthetic filler; this example attaches the
client-workload layer instead.  Open-loop clients on every replica submit
``put``/``delete`` commands to a local :class:`~repro.runner.workload.RequestGateway`,
which batches them, forwards them to the current leader's mempool, and
retries across view changes; committed blocks are applied to a
deterministic replicated KV store with exactly-once semantics per
``(client, seq)``.  The same ``WorkloadConfig`` runs under the simulator,
the zero-jitter virtual-clock asyncio runtime (byte-identical to the sim
run), and a real TCP cluster — this script runs all three and compares.

Run with:  python examples/kv_workload.py
           python examples/kv_workload.py --rate 50 --stop 10
           python examples/kv_workload.py --procs 0   # one OS process per node
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.experiments import ScenarioConfig, run_scenario
from repro.runner import WorkloadConfig, kv_state_digests, make_live_cluster
from repro.runner.live import run_live_scenario


def virtual_lanes(args: argparse.Namespace) -> bool:
    """Sim and zero-jitter live must agree byte-for-byte."""
    workload = WorkloadConfig(mode="open", rate=args.rate, clients=2, stop=args.stop)
    config = ScenarioConfig(
        n=args.n, pacemaker="lumiere", delta=1.0, actual_delay=0.1,
        duration=args.stop + 10.0, seed=args.seed, record_trace=False,
        workload=workload,
    )
    sim = run_scenario(config)
    live = run_live_scenario(config)  # asyncio runtime, virtual clock, zero jitter

    sim_digests = kv_state_digests(sim.replicas.values())
    live_digests = live.kv_state_digests()
    identical = (
        {p: r.ledger.block_ids for p, r in sim.replicas.items()}
        == {p: r.ledger.block_ids for p, r in live.replicas.items()}
        and sim_digests == live_digests
    )
    print("virtual lanes (sim vs zero-jitter live)")
    print("-" * 48)
    print(f"requests applied (sim)         : {sim.metrics.requests_applied}"
          f"/{sim.metrics.requests_submitted}")
    print(f"requests applied (live)        : {live.metrics.requests_applied}")
    print(f"request p50 / p99              : "
          f"{sim.metrics.request_latency_percentile(0.5):.3f}s / "
          f"{sim.metrics.request_latency_percentile(0.99):.3f}s (virtual time)")
    print(f"distinct KV digests            : {len(set(sim_digests.values()))}")
    print(f"lanes byte-identical           : {identical}")
    print()
    return identical and sim.metrics.requests_applied == sim.metrics.requests_submitted


async def tcp_lane(args: argparse.Namespace) -> bool:
    """The same workload over real TCP sockets, wall-clock time."""
    workload = WorkloadConfig(
        mode="open", rate=args.rate, clients=2, stop=args.stop,
        forward_deadline=0.02, retry_interval=2.0,
    )
    config = ScenarioConfig(
        n=args.n, pacemaker="lumiere", delta=args.delta, actual_delay=0.02,
        duration=args.stop + 30.0, seed=args.seed, record_trace=False,
        workload=workload,
    )
    placement = "inline" if args.procs is None else "process"
    processes = None if args.procs in (None, 0) else args.procs
    cluster = make_live_cluster(config, placement=placement, processes=processes)
    print(f"booting n={args.n} lumiere cluster over TCP ({placement} placement)...")
    await cluster.start()
    started = time.monotonic()
    await cluster.run(args.stop + 2.0)  # submission window + drain
    elapsed = time.monotonic() - started
    await cluster.stop()

    metrics = cluster.metrics
    latencies = sorted(metrics.request_latencies())
    digests = cluster.kv_digests()
    applied, submitted = metrics.requests_applied, metrics.requests_submitted
    print()
    print(f"TCP lane (n={args.n}, Delta={args.delta}s, {placement} placement)")
    print("-" * 48)
    print(f"requests applied               : {applied}/{submitted}")
    print(f"throughput                     : {applied / elapsed:.1f} requests/s")
    if latencies:
        print(f"request p50 / p99              : "
              f"{latencies[len(latencies) // 2]* 1000:.1f}ms / "
              f"{latencies[min(len(latencies) - 1, round(0.99 * (len(latencies) - 1)))] * 1000:.1f}ms")
    print(f"distinct KV digests            : {len(set(digests.values()))}")
    print(f"ledgers consistent             : {cluster.ledgers_are_consistent()}")
    print(f"KV apply chains consistent     : {cluster.kv_consistent()}")
    return (
        applied == submitted
        and len(set(digests.values())) == 1
        and cluster.ledgers_are_consistent()
        and cluster.kv_consistent()
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument("--rate", type=float, default=25.0,
                        help="open-loop requests/sec per hosting replica")
    parser.add_argument("--stop", type=float, default=8.0,
                        help="submission window in seconds")
    parser.add_argument("--delta", type=float, default=0.2,
                        help="known delay bound Delta for the TCP lane")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--procs", type=int, default=None, metavar="N",
                        help="process placement for the TCP lane (0 = one "
                             "process per node); omit for inline")
    args = parser.parse_args()

    ok = virtual_lanes(args)
    ok = asyncio.run(tcp_lane(args)) and ok
    print()
    if not ok:
        print("FAILED: lanes disagreed or requests were lost", file=sys.stderr)
        return 1
    print("OK: every request applied exactly once, identical state everywhere")
    return 0


if __name__ == "__main__":
    sys.exit(main())
