#!/usr/bin/env python3
"""Byzantine fault tolerance: what one silent leader costs each protocol.

This is the scenario behind Figure 1 of the paper.  A single Byzantine
processor that simply refuses to propose when it is the leader is enough to
stall LP22 for the remainder of an epoch (a wait that grows with the system
size), whereas Lumiere, Fever and the relay-based protocols lose only a
bounded amount of time per faulty view.

The script runs the same corruption plan under several pacemakers and prints
the worst and median gap between consecutive consensus decisions in the
steady state.

Run with:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.adversary import CorruptionPlan, SilentLeaderBehaviour
from repro.experiments import ScenarioConfig, run_scenario

PROTOCOLS = ("lumiere", "lp22", "fever", "cogsworth", "backoff")
N = 10
DURATION = 1200.0
WARMUP = 60.0


def main() -> None:
    print(f"One silent Byzantine leader out of n={N} processors (Delta=1, delta=0.05)")
    print(f"{'protocol':<12} {'decisions':>10} {'worst gap':>11} {'median gap':>11} {'msgs':>9}")
    print("-" * 58)
    for name in PROTOCOLS:
        config = ScenarioConfig(
            n=N,
            pacemaker=name,
            delta=1.0,
            actual_delay=0.05,
            gst=0.0,
            duration=DURATION,
            record_trace=False,
        )
        config.corruption = CorruptionPlan.uniform(
            config.protocol_config(), [N // 2], SilentLeaderBehaviour
        )
        result = run_scenario(config)
        gaps = sorted(result.metrics.decision_gaps(after=WARMUP))
        worst = gaps[-1] if gaps else float("nan")
        median = gaps[len(gaps) // 2] if gaps else float("nan")
        print(
            f"{name:<12} {result.honest_decisions():>10} {worst:>11.2f} {median:>11.2f} "
            f"{result.metrics.total_honest_messages:>9}"
        )
    print()
    print("Reading the table: LP22's worst gap spans the rest of an epoch (grows with n);")
    print("Lumiere's is a small constant number of its view time Gamma per faulty leader,")
    print("and its median gap stays at network speed thanks to optimistic responsiveness.")


if __name__ == "__main__":
    main()
