#!/usr/bin/env python3
"""Steady-state costs: messages and time per decision (Table 1, eventual rows).

Runs each protocol fault-free and with the maximum number of silent faults,
long after GST, and reports the per-decision communication and latency that
the "Eventual Worst-case" rows of Table 1 are about — plus the number of
heavy (all-to-all) epoch synchronisations each protocol kept performing.

Run with:  python examples/steady_state_costs.py
"""

from __future__ import annotations

from repro.adversary import SilentLeaderBehaviour, spread_corruption
from repro.experiments import ScenarioConfig, run_scenario

PROTOCOLS = ("lumiere", "basic-lumiere", "lp22", "fever", "cogsworth")
N = 7
DURATION = 900.0


def run_one(name: str, f_actual: int):
    config = ScenarioConfig(
        n=N,
        pacemaker=name,
        delta=1.0,
        actual_delay=0.1,
        gst=0.0,
        duration=DURATION,
        record_trace=False,
    )
    config.corruption = spread_corruption(config.protocol_config(), f_actual, SilentLeaderBehaviour)
    result = run_scenario(config)
    summary = result.summary()
    return summary


def main() -> None:
    f_max = (N - 1) // 3
    print(f"Steady-state per-decision costs, n={N}, Delta=1, delta=0.1, duration={DURATION}")
    header = (
        f"{'protocol':<15} {'f_a':>4} {'decisions':>10} {'worst msgs/gap':>15} "
        f"{'worst gap':>10} {'heavy syncs':>12}"
    )
    print(header)
    print("-" * len(header))
    for f_actual in (0, f_max):
        for name in PROTOCOLS:
            summary = run_one(name, f_actual)
            print(
                f"{name:<15} {f_actual:>4} {summary.decisions:>10} "
                f"{str(summary.eventual_communication):>15} "
                f"{summary.eventual_latency if summary.eventual_latency is None else round(summary.eventual_latency, 2):>10} "
                f"{summary.heavy_syncs_after_warmup:>12}"
            )
        print()
    print("Lumiere's row shows the paper's headline: once the success criterion has been")
    print("observed, no heavy epoch synchronisation happens again, so both the message")
    print("count and the time between decisions stay proportional to the actual faults.")


if __name__ == "__main__":
    main()
