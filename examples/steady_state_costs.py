#!/usr/bin/env python3
"""Steady-state costs: messages and time per decision (Table 1, eventual rows).

Runs each protocol fault-free and with the maximum number of silent faults,
long after GST, and reports the per-decision communication and latency that
the "Eventual Worst-case" rows of Table 1 are about — plus the number of
heavy (all-to-all) epoch synchronisations each protocol kept performing.

The sweep is expressed as a declarative :class:`repro.runner.Campaign`: a
cartesian grid (fault level x protocol) expanded into seeded scenario runs.
Set ``REPRO_BACKEND=process`` to execute the grid on a process pool, and
``REPRO_CACHE=.repro-cache`` to skip cells already computed by an earlier
invocation.

Run with:  python examples/steady_state_costs.py
"""

from __future__ import annotations

import os

from repro.experiments.scenario import build_spread_fault_config
from repro.runner import Campaign, Sweep

PROTOCOLS = ("lumiere", "basic-lumiere", "lp22", "fever", "cogsworth")
N = 7
DURATION = 900.0


def main() -> None:
    f_max = (N - 1) // 3
    campaign = Campaign(
        name="steady-state-costs",
        build=build_spread_fault_config,  # the shared steady-state cell shape
        sweeps=(Sweep("f_actual", (0, f_max)), Sweep("protocol", PROTOCOLS)),
        fixed={"n": N, "duration": DURATION, "delta": 1.0, "actual_delay": 0.1, "seed": 0},
    )
    result = campaign.run(
        backend=os.environ.get("REPRO_BACKEND", "serial"),
        cache=os.environ.get("REPRO_CACHE") or None,
    )

    print(f"Steady-state per-decision costs, n={N}, Delta=1, delta=0.1, duration={DURATION}")
    print(result.describe())
    header = (
        f"{'protocol':<15} {'f_a':>4} {'decisions':>10} {'worst msgs/gap':>15} "
        f"{'worst gap':>10} {'heavy syncs':>12}"
    )
    print(header)
    print("-" * len(header))
    for f_actual in (0, f_max):
        for name in PROTOCOLS:
            summary = result.one(f_actual=f_actual, protocol=name).summary
            print(
                f"{name:<15} {f_actual:>4} {summary.decisions:>10} "
                f"{str(summary.eventual_communication):>15} "
                f"{summary.eventual_latency if summary.eventual_latency is None else round(summary.eventual_latency, 2):>10} "
                f"{summary.heavy_syncs_after_warmup:>12}"
            )
        print()
    print("Lumiere's row shows the paper's headline: once the success criterion has been")
    print("observed, no heavy epoch synchronisation happens again, so both the message")
    print("count and the time between decisions stay proportional to the actual faults.")


if __name__ == "__main__":
    main()
