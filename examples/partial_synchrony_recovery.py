#!/usr/bin/env python3
"""Partial synchrony: chaos before GST, recovery after it.

The adversary controls message delays before the Global Stabilisation Time.
This example drives a 7-processor Lumiere deployment through 60 time units
of pre-GST asynchrony (delays of tens of Delta) with two silent Byzantine
processors, then lets the network stabilise, and prints the recovery
timeline: when the first post-GST heavy epoch synchronisation completes,
when the first honest-leader decision lands (worst-case latency), and how
the system settles back into network-speed decisions.

Run with:  python examples/partial_synchrony_recovery.py
"""

from __future__ import annotations

from repro.adversary import (
    SilentLeaderBehaviour,
    spread_corruption,
    worst_case_clock_dispersion_model,
)
from repro.experiments import ScenarioConfig, run_scenario


def main() -> None:
    gst = 60.0
    config = ScenarioConfig(
        n=7,
        pacemaker="lumiere",
        delta=1.0,
        actual_delay=0.1,
        gst=gst,
        duration=gst + 400.0,
        record_trace=True,
        seed=7,
    )
    protocol_config = config.protocol_config()
    config.corruption = spread_corruption(protocol_config, 2, SilentLeaderBehaviour)
    config.delay_model = worst_case_clock_dispersion_model(
        protocol_config, config.actual_delay, pre_gst_max_delay=gst
    )
    result = run_scenario(config)
    metrics = result.metrics

    pre_gst_decisions = [d for d in metrics.honest_decisions() if d.time < gst]
    first_after = metrics.first_honest_decision_after(gst)
    latency = metrics.latency_after(gst)
    w_gst = metrics.communication_after(gst + config.delta)
    steady_gaps = metrics.decision_gaps(after=gst + 100.0)

    print("Partial synchrony recovery (Lumiere, n=7, f_a=2, GST=60)")
    print("-" * 56)
    print(f"decisions before GST                 : {len(pre_gst_decisions)}")
    print(f"first honest decision after GST      : t={first_after.time:.2f} (view {first_after.view})")
    print(f"worst-case latency (t*_GST - GST)    : {latency:.2f}  [bound: O(n * Delta)]")
    print(f"W_(GST+Delta) honest messages        : {w_gst}        [bound: O(n^2)]")
    print(f"heavy epoch syncs after t=GST+150    : {metrics.epoch_syncs_after(gst + 150.0)}")
    if steady_gaps:
        print(f"steady-state worst decision gap      : {max(steady_gaps):.2f}")
    print(f"honest ledgers consistent            : {result.ledgers_are_consistent()}")
    print()
    print("Epoch synchronisations observed (time, processor, epoch):")
    for time, pid, epoch in result.metrics.epoch_syncs[:10]:
        print(f"  t={time:8.2f}  p{pid}  epoch {epoch}")


if __name__ == "__main__":
    main()
