#!/usr/bin/env python3
"""Campaigns: declarative sweeps, parallel execution, and result caching.

This example shows the full campaign workflow end to end:

1. declare a cartesian grid — pacemaker x GST placement x seed — over the
   scenario harness with a module-level ``build`` function;
2. execute it (serial by default; ``REPRO_BACKEND=process`` fans the cells
   out over a process pool);
3. cache every cell's result on disk, so running this script a second time
   executes nothing and reads everything back from ``.repro-cache/``;
4. aggregate the records — here, worst-case recovery latency after GST per
   pacemaker, averaged over seeds.

Run with:  python examples/campaign_sweep.py  (twice, to see the cache hit)
"""

from __future__ import annotations

import os

from repro.adversary import SilentLeaderBehaviour, spread_corruption
from repro.experiments import ScenarioConfig
from repro.runner import Campaign, Sweep

PACEMAKERS = ("lumiere", "lp22", "fever")
GSTS = (0.0, 40.0)
SEEDS = (0, 1, 2)


def build_config(params: dict) -> ScenarioConfig:
    """Each cell: n=7, two silent faults, chaos-free network after GST."""
    config = ScenarioConfig(
        n=7,
        pacemaker=params["pacemaker"],
        delta=1.0,
        actual_delay=0.1,
        gst=params["gst"],
        duration=params["gst"] + 300.0,
        seed=params["seed"],
        record_trace=False,
    )
    config.corruption = spread_corruption(config.protocol_config(), 2, SilentLeaderBehaviour)
    return config


def main() -> None:
    campaign = Campaign(
        name="recovery-latency",
        build=build_config,
        sweeps=(
            Sweep("pacemaker", PACEMAKERS),
            Sweep("gst", GSTS),
            Sweep("seed", SEEDS),
        ),
    )
    print(f"campaign {campaign.name!r}: {len(campaign)} cells "
          f"({len(PACEMAKERS)} pacemakers x {len(GSTS)} GSTs x {len(SEEDS)} seeds)")

    result = campaign.run(
        backend=os.environ.get("REPRO_BACKEND", "serial"),
        # Defaults to .repro-cache (this example is the cache demo);
        # REPRO_CACHE= (empty) disables caching, as in the other examples.
        cache=os.environ.get("REPRO_CACHE", ".repro-cache") or None,
    )
    print(result.describe())
    print()

    print(f"{'pacemaker':<10} {'GST':>6} {'mean latency after GST':>24} {'all safe':>9}")
    print("-" * 52)
    for pacemaker in PACEMAKERS:
        for gst in GSTS:
            records = result.select(pacemaker=pacemaker, gst=gst)
            latencies = [
                r.summary.worst_case_latency
                for r in records
                if r.summary.worst_case_latency is not None
            ]
            mean = sum(latencies) / len(latencies) if latencies else float("nan")
            safe = all(r.ledgers_consistent for r in records)
            print(f"{pacemaker:<10} {gst:>6.1f} {mean:>24.2f} {str(safe):>9}")
    print()
    print("Each cell is content-addressed: rerun this script and every cell is a")
    print("cache hit; change any parameter (or the package version) and only the")
    print("affected cells are re-executed.")


if __name__ == "__main__":
    main()
